//! The run ledger: an append-only, schema-validated JSONL corpus of
//! placement runs (`runs/ledger.jsonl`).
//!
//! Each line is one [`LedgerEntry`]: the run's FNV fingerprint, a compact
//! options summary, the `qor.*` gauge snapshot, the stage self-time
//! partition in **integer nanoseconds** (including an `other` row so the
//! rows always sum to the root wall exactly — the same partition
//! invariant the analysis layer's self-time proptest pins), and summary
//! statistics for every convergence series. Entries are written with a
//! single appending `write` of one `\n`-terminated line, so concurrent
//! writers interleave whole lines, never fragments.
//!
//! [`trend`] compares entries of the same fingerprint across the corpus,
//! reusing the TraceDiff noise model ([`DiffOptions`]): QoR gauges gate
//! with `metric_rel_tol` (0 by default — the flow is bitwise-
//! deterministic, so any drift is real), wall time is reported as
//! advisory only (machine-dependent).

use crate::analysis::significant;
use crate::json::{escape, fmt_f64, parse, validate, Json};
use crate::{DiffOptions, MetricValue, TraceReport};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::OnceLock;

/// The checked-in schema every appended line is validated against.
pub const SCHEMA_JSON: &str = include_str!("../../../schemas/ledger_entry.schema.json");

fn schema() -> Result<&'static Json, String> {
    static SCHEMA: OnceLock<Result<Json, String>> = OnceLock::new();
    SCHEMA
        .get_or_init(|| parse(SCHEMA_JSON))
        .as_ref()
        .map_err(|e| format!("embedded ledger schema is invalid: {e}"))
}

// ---------------------------------------------------------------------------
// Entry

/// Summary statistics for one convergence series of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Series name (e.g. `place.outer`).
    pub name: String,
    /// The value key summarized (the series' first column, e.g. `hpwl`).
    pub key: String,
    /// Number of rows recorded.
    pub rows: u64,
    /// First value of `key`.
    pub first: f64,
    /// Last value of `key`.
    pub last: f64,
    /// Minimum value of `key`.
    pub min: f64,
    /// Maximum value of `key`.
    pub max: f64,
}

/// One run ledger entry — a single JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Entry schema version (currently 1).
    pub version: u32,
    /// FNV-1a fingerprint of (netlist, options) — the cross-run grouping
    /// key. Serialized as a 16-digit hex string (u64 exceeds the JSON
    /// number range a float-based parser preserves).
    pub fingerprint: u64,
    /// Human-facing design label (informational, not a grouping key).
    pub design: String,
    /// Where the entry came from: `flow`, `bench` or `harvest`.
    pub source: String,
    /// `completed`, or `interrupted:<kind>@<site>` for a run cut short.
    pub status: String,
    /// Worker threads the run used.
    pub threads: u32,
    /// Whether the run resumed from a checkpoint.
    pub resumed: bool,
    /// Compact options summary (informational).
    pub options: String,
    /// Root span wall time in nanoseconds.
    pub root_wall_ns: u64,
    /// Stage self-time partition in integer ns, including the `other`
    /// row (root wall minus the stage spans; may be negative under
    /// parallel fan-out). Sums to `root_wall_ns` exactly.
    pub stages: Vec<(String, i64)>,
    /// `qor.*` gauge snapshot, sorted by name.
    pub qor: Vec<(String, f64)>,
    /// Convergence-series summaries, in first-appearance order.
    pub series: Vec<SeriesSummary>,
}

impl LedgerEntry {
    /// A minimal entry: completed, single-threaded, no captured data.
    pub fn new(fingerprint: u64, design: &str, source: &str) -> Self {
        LedgerEntry {
            version: 1,
            fingerprint,
            design: design.to_string(),
            source: source.to_string(),
            status: "completed".to_string(),
            threads: 1,
            resumed: false,
            options: String::new(),
            root_wall_ns: 0,
            stages: Vec::new(),
            qor: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the run status (`completed` or an `interrupted:...` label).
    pub fn with_status(mut self, status: &str) -> Self {
        self.status = status.to_string();
        self
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Marks the run as resumed from a checkpoint.
    pub fn with_resumed(mut self, resumed: bool) -> Self {
        self.resumed = resumed;
        self
    }

    /// Sets the compact options summary.
    pub fn with_options(mut self, options: &str) -> Self {
        self.options = options.to_string();
        self
    }

    /// Fills the measured fields from a captured trace: root wall, the
    /// integer-ns stage partition (with its reconciling `other` row),
    /// the `qor.*` gauge snapshot and per-series summaries.
    pub fn capture_trace(mut self, report: &TraceReport) -> Self {
        let root_wall_ns = report
            .root_span()
            .map_or(0, |s| s.end_ns.saturating_sub(s.start_ns));
        self.root_wall_ns = root_wall_ns;
        self.stages = report
            .stage_nanos()
            .into_iter()
            .map(|(name, ns)| (name.to_string(), ns as i64))
            .collect();
        let staged: i64 = self.stages.iter().map(|(_, ns)| ns).sum();
        // The partition invariant: stages + other == root wall, exactly,
        // in integer ns (`other` is the root's own self time and may be
        // negative when stage spans overlap under parallel fan-out).
        self.stages
            .push(("other".to_string(), root_wall_ns as i64 - staged));
        self.qor = report
            .metrics
            .iter()
            .filter(|m| m.name.starts_with("qor."))
            .filter_map(|m| match m.value {
                MetricValue::Gauge(v) => Some((m.name.to_string(), v)),
                _ => None,
            })
            .collect();
        self.qor.sort_by(|a, b| a.0.cmp(&b.0));
        self.series = summarize_series(report);
        self
    }

    /// Applies a multiplicative factor to one QoR metric — the trend
    /// gate's self-test knob (`tracetool harvest --doctor`).
    pub fn doctor(mut self, metric: &str, factor: f64) -> Self {
        for (name, value) in &mut self.qor {
            if name == metric {
                *value *= factor;
            }
        }
        self
    }

    /// Serializes the entry as one compact JSON line (no trailing `\n`).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256 + 32 * (self.stages.len() + self.qor.len()));
        out.push_str("{\"version\":1,");
        let _ = write!(out, "\"fingerprint\":\"{:016x}\",", self.fingerprint);
        let _ = write!(out, "\"design\":\"{}\",", escape(&self.design));
        let _ = write!(out, "\"source\":\"{}\",", escape(&self.source));
        let _ = write!(out, "\"status\":\"{}\",", escape(&self.status));
        let _ = write!(out, "\"threads\":{},", self.threads);
        let _ = write!(out, "\"resumed\":{},", self.resumed);
        let _ = write!(out, "\"options\":\"{}\",", escape(&self.options));
        let _ = write!(out, "\"root_wall_ns\":{},", self.root_wall_ns);
        out.push_str("\"stages\":[");
        for (i, (name, ns)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"self_ns\":{}}}", escape(name), ns);
        }
        out.push_str("],\"qor\":[");
        for (i, (name, value)) in self.qor.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                fmt_f64(*value)
            );
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"key\":\"{}\",\"rows\":{},\"first\":{},\"last\":{},\"min\":{},\"max\":{}}}",
                escape(&s.name),
                escape(&s.key),
                s.rows,
                fmt_f64(s.first),
                fmt_f64(s.last),
                fmt_f64(s.min),
                fmt_f64(s.max)
            );
        }
        out.push_str("]}");
        out
    }

    /// Deserializes an entry from a parsed JSON document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let errors = validate(doc, schema()?);
        if !errors.is_empty() {
            return Err(format!("ledger entry fails schema: {}", errors.join("; ")));
        }
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field {k}"))
        };
        let fingerprint_hex = str_field("fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16)
            .map_err(|e| format!("bad fingerprint {fingerprint_hex:?}: {e}"))?;
        let resumed = match doc.get("resumed") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing bool field resumed".to_string()),
        };
        let mut stages = Vec::new();
        if let Some(rows) = doc.get("stages").and_then(Json::as_array) {
            for row in rows {
                let name = row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("stage row missing name")?;
                let ns = row
                    .get("self_ns")
                    .and_then(Json::as_f64)
                    .ok_or("stage row missing self_ns")?;
                stages.push((name.to_string(), ns as i64));
            }
        }
        let mut qor = Vec::new();
        if let Some(rows) = doc.get("qor").and_then(Json::as_array) {
            for row in rows {
                let name = row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("qor row missing name")?;
                // `null` marks a non-finite gauge (JSON has no NaN).
                let value = row.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN);
                qor.push((name.to_string(), value));
            }
        }
        let mut series = Vec::new();
        if let Some(rows) = doc.get("series").and_then(Json::as_array) {
            for row in rows {
                let field = |k: &str| -> Result<f64, String> {
                    row.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("series row missing {k}"))
                };
                series.push(SeriesSummary {
                    name: row
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("series row missing name")?
                        .to_string(),
                    key: row
                        .get("key")
                        .and_then(Json::as_str)
                        .ok_or("series row missing key")?
                        .to_string(),
                    rows: field("rows")? as u64,
                    first: field("first")?,
                    last: field("last")?,
                    min: field("min")?,
                    max: field("max")?,
                });
            }
        }
        Ok(LedgerEntry {
            version: num_field("version")? as u32,
            fingerprint,
            design: str_field("design")?,
            source: str_field("source")?,
            status: str_field("status")?,
            threads: num_field("threads")? as u32,
            resumed,
            options: str_field("options")?,
            root_wall_ns: num_field("root_wall_ns")? as u64,
            stages,
            qor,
            series,
        })
    }

    /// Parses one JSONL line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        Self::from_json(&parse(line)?)
    }

    /// The value of one QoR metric, when present.
    pub fn qor_value(&self, name: &str) -> Option<f64> {
        self.qor.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Root wall time in seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.root_wall_ns as f64 * 1e-9
    }

    /// Whether the run finished (vs. interrupted).
    pub fn completed(&self) -> bool {
        self.status == "completed"
    }

    /// The stage rows as `(name, seconds)` — historical timings for
    /// [`crate::ProgressSink`] ETAs (the `other` row excluded).
    pub fn stage_history(&self) -> Vec<(String, f64)> {
        self.stages
            .iter()
            .filter(|(name, _)| name != "other")
            .map(|(name, ns)| (name.clone(), *ns as f64 * 1e-9))
            .collect()
    }
}

/// Builds an entry from a parsed `TraceReport::to_json()` document — the
/// `tracetool harvest` backfill path for existing TRACE artifacts.
///
/// Stage selection mirrors [`TraceReport::stage_nanos`] (the root's
/// direct children, with `flow.*`-named children transparent), and the
/// exported µs span fields convert back to integer ns by rounding —
/// exact recovery for any run shorter than ~29 days, so the partition
/// invariant (Σ stages == root wall) survives the JSON trip.
pub fn entry_from_report_json(
    doc: &Json,
    fingerprint: u64,
    design: &str,
) -> Result<LedgerEntry, String> {
    let root = doc
        .get("root")
        .and_then(Json::as_f64)
        .ok_or("report has no root id")? as u64;
    let spans = doc
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("report has no spans array")?;
    // (id, parent, name, wall_ns) in file (start) order.
    let mut rows: Vec<(u64, u64, String, u64)> = Vec::with_capacity(spans.len());
    for s in spans {
        let num = |k: &str| -> Result<f64, String> {
            s.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("span missing {k}"))
        };
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span missing name")?;
        rows.push((
            num("id")? as u64,
            num("parent")? as u64,
            name.to_string(),
            (num("dur_us")? * 1e3).round() as u64,
        ));
    }
    let root_wall_ns = rows
        .iter()
        .find(|(id, ..)| *id == root)
        .map_or(0, |&(.., ns)| ns);
    let is_flow_root = |name: &str| name.starts_with("flow.");
    let nested: Vec<u64> = rows
        .iter()
        .filter(|(_, parent, name, _)| *parent == root && is_flow_root(name))
        .map(|&(id, ..)| id)
        .collect();
    let mut stages: Vec<(String, i64)> = rows
        .iter()
        .filter(|(_, parent, name, _)| {
            (*parent == root && !is_flow_root(name)) || nested.contains(parent)
        })
        .map(|(_, _, name, ns)| (name.clone(), *ns as i64))
        .collect();
    let staged: i64 = stages.iter().map(|(_, ns)| ns).sum();
    stages.push(("other".to_string(), root_wall_ns as i64 - staged));

    let mut qor: Vec<(String, f64)> = Vec::new();
    if let Some(metrics) = doc.get("metrics").and_then(Json::as_array) {
        for m in metrics {
            let name = m.get("name").and_then(Json::as_str).unwrap_or_default();
            let kind = m.get("kind").and_then(Json::as_str).unwrap_or_default();
            if kind == "gauge" && name.starts_with("qor.") {
                let value = m.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN);
                qor.push((name.to_string(), value));
            }
        }
    }
    qor.sort_by(|a, b| a.0.cmp(&b.0));

    let mut series: Vec<SeriesSummary> = Vec::new();
    if let Some(groups) = doc.get("series").and_then(Json::as_array) {
        for g in groups {
            let name = g.get("name").and_then(Json::as_str).unwrap_or_default();
            let Some(rows) = g.get("rows").and_then(Json::as_array) else {
                continue;
            };
            for row in rows {
                let Json::Obj(map) = row else { continue };
                // Every non-index column gets its own (name, key)
                // summary, matching `summarize_series` on the in-memory
                // report (canonical name-then-key order restored below).
                for (key, value) in map {
                    if key == "i" {
                        continue;
                    }
                    let Some(v) = value.as_f64() else { continue };
                    match series.iter_mut().find(|s| s.name == name && s.key == *key) {
                        Some(s) => {
                            s.rows += 1;
                            s.last = v;
                            s.min = s.min.min(v);
                            s.max = s.max.max(v);
                        }
                        None => series.push(SeriesSummary {
                            name: name.to_string(),
                            key: key.clone(),
                            rows: 1,
                            first: v,
                            last: v,
                            min: v,
                            max: v,
                        }),
                    }
                }
            }
        }
    }
    sort_series(&mut series);

    let mut entry = LedgerEntry::new(fingerprint, design, "harvest");
    entry.root_wall_ns = root_wall_ns;
    entry.stages = stages;
    entry.qor = qor;
    entry.series = series;
    Ok(entry)
}

/// One summary per (series name, value column), sorted by name then key
/// — the same canonical order [`entry_from_report_json`] produces from a
/// parsed report, so harvested entries match flow-written ones.
fn summarize_series(report: &TraceReport) -> Vec<SeriesSummary> {
    let mut out: Vec<SeriesSummary> = Vec::new();
    for row in &report.series {
        for &(key, v) in &row.values {
            match out.iter_mut().find(|s| s.name == row.name && s.key == key) {
                Some(s) => {
                    s.rows += 1;
                    s.last = v;
                    s.min = s.min.min(v);
                    s.max = s.max.max(v);
                }
                None => out.push(SeriesSummary {
                    name: row.name.to_string(),
                    key: key.to_string(),
                    rows: 1,
                    first: v,
                    last: v,
                    min: v,
                    max: v,
                }),
            }
        }
    }
    sort_series(&mut out);
    out
}

fn sort_series(out: &mut [SeriesSummary]) {
    out.sort_by(|a, b| (a.name.as_str(), a.key.as_str()).cmp(&(b.name.as_str(), b.key.as_str())));
}

// ---------------------------------------------------------------------------
// Store

/// Validates and appends one entry to the JSONL ledger at `path`,
/// creating parent directories and the file as needed. The whole line is
/// written with a single appending `write`, so concurrent appenders
/// interleave complete lines.
pub fn append(path: &Path, entry: &LedgerEntry) -> Result<(), String> {
    let line = entry.to_json_line();
    let doc = parse(&line).map_err(|e| format!("ledger entry does not serialize: {e}"))?;
    let errors = validate(&doc, schema()?);
    if !errors.is_empty() {
        return Err(format!(
            "refusing to append schema-invalid entry: {}",
            errors.join("; ")
        ));
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut buf = line.into_bytes();
    buf.push(b'\n');
    file.write_all(&buf)
        .map_err(|e| format!("append {}: {e}", path.display()))
}

/// Loads every entry from a JSONL ledger, in file order.
pub fn load(path: &Path) -> Result<Vec<LedgerEntry>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = LedgerEntry::parse_line(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        entries.push(entry);
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Trend analysis

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (wirelength, power, skew, overflow).
    LowerIsBetter,
    /// Larger is better (slacks: WNS/TNS/hold are ≤ 0, closer to 0 wins).
    HigherIsBetter,
    /// Tracked but never gated (counts, structural stats, wall time).
    Informational,
}

/// The improvement direction of a `qor.*` metric name.
pub fn qor_direction(name: &str) -> Direction {
    if name.contains("wns") || name.contains("tns") {
        return Direction::HigherIsBetter;
    }
    if ["hpwl", "rwl", "power", "skew", "overflow", "utilization"]
        .iter()
        .any(|k| name.contains(k))
    {
        return Direction::LowerIsBetter;
    }
    Direction::Informational
}

/// One cross-run comparison: the latest entry of a fingerprint group
/// against the best earlier entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Fingerprint group the row belongs to.
    pub fingerprint: u64,
    /// Design label of the latest entry.
    pub design: String,
    /// Metric name (`qor.*`, or `wall_s` for the advisory wall row).
    pub metric: String,
    /// Best earlier value (by the metric's direction).
    pub baseline: f64,
    /// Latest entry's value.
    pub latest: f64,
    /// Completed runs in the group.
    pub runs: usize,
    /// Improvement direction used for the verdict.
    pub direction: Direction,
    /// Latest is significantly worse than baseline.
    pub regressed: bool,
    /// Latest is significantly better than baseline.
    pub improved: bool,
}

impl TrendRow {
    /// Relative change from baseline to latest, in percent.
    pub fn delta_pct(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.latest == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.latest - self.baseline) / self.baseline.abs() * 100.0
        }
    }
}

/// The result of [`trend`] over a ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrendReport {
    /// Per-metric comparisons for every multi-run fingerprint group.
    pub rows: Vec<TrendRow>,
    /// Fingerprint groups seen (including singletons).
    pub groups: usize,
    /// Groups with fewer than two completed runs (nothing to compare).
    pub singletons: usize,
}

impl TrendReport {
    /// The rows that regressed.
    pub fn regressions(&self) -> Vec<&TrendRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }
}

/// Cross-run trend analysis: groups `entries` by fingerprint (file order
/// preserved) and compares each group's latest completed run against the
/// best earlier one, metric by metric. QoR gauges use
/// `opts.metric_rel_tol` (default 0 — the flow is deterministic, any
/// drift is significant) and gate; wall time uses the
/// `time_rel_tol`/`time_abs_tol_s` noise model but stays advisory
/// (machine-dependent), reported as an `Informational` row.
pub fn trend(entries: &[LedgerEntry], opts: &DiffOptions) -> TrendReport {
    let mut order: Vec<u64> = Vec::new();
    for e in entries {
        if !order.contains(&e.fingerprint) {
            order.push(e.fingerprint);
        }
    }
    let mut report = TrendReport {
        groups: order.len(),
        ..TrendReport::default()
    };
    for fp in order {
        let group: Vec<&LedgerEntry> = entries
            .iter()
            .filter(|e| e.fingerprint == fp && e.completed())
            .collect();
        let Some((latest, earlier)) = group.split_last() else {
            report.singletons += 1;
            continue;
        };
        if earlier.is_empty() {
            report.singletons += 1;
            continue;
        }
        for (name, value) in &latest.qor {
            let prev: Vec<f64> = earlier.iter().filter_map(|e| e.qor_value(name)).collect();
            if prev.is_empty() {
                continue;
            }
            let direction = qor_direction(name);
            let baseline = match direction {
                Direction::LowerIsBetter => prev.iter().copied().fold(f64::INFINITY, f64::min),
                Direction::HigherIsBetter => prev.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                // Informational metrics compare against the previous run.
                Direction::Informational => prev[prev.len() - 1],
            };
            let moved = significant(baseline, *value, opts.metric_rel_tol, 0.0);
            let worse = match direction {
                Direction::LowerIsBetter => *value > baseline,
                Direction::HigherIsBetter => *value < baseline,
                Direction::Informational => false,
            };
            report.rows.push(TrendRow {
                fingerprint: fp,
                design: latest.design.clone(),
                metric: name.clone(),
                baseline,
                latest: *value,
                runs: group.len(),
                direction,
                regressed: moved && worse && direction != Direction::Informational,
                improved: moved && !worse && direction != Direction::Informational,
            });
        }
        // Advisory wall row: best earlier wall vs latest, flagged by the
        // TraceDiff time noise model but never a gate failure.
        let base_wall = earlier
            .iter()
            .map(|e| e.wall_seconds())
            .fold(f64::INFINITY, f64::min);
        let latest_wall = latest.wall_seconds();
        let moved = significant(
            base_wall,
            latest_wall,
            opts.time_rel_tol,
            opts.time_abs_tol_s,
        );
        report.rows.push(TrendRow {
            fingerprint: fp,
            design: latest.design.clone(),
            metric: "wall_s".to_string(),
            baseline: base_wall,
            latest: latest_wall,
            runs: group.len(),
            direction: Direction::Informational,
            regressed: false,
            improved: moved && latest_wall < base_wall,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgValue, InstantRecord, MetricSnapshot, SeriesRow, SpanRecord};

    fn span(id: u64, parent: u64, name: &'static str, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            thread: 0,
            start_ns,
            end_ns,
            args: vec![],
        }
    }

    fn sample_report() -> TraceReport {
        TraceReport {
            root: 1,
            spans: vec![
                span(1, 0, "flow.clustered", 0, 10_000_000),
                span(2, 1, "clustering", 0, 3_000_000),
                span(3, 1, "shaping", 3_000_000, 7_000_000),
                span(4, 3, "vpr.cluster", 3_100_000, 3_900_000),
            ],
            instants: vec![InstantRecord {
                name: "recovery.checkpoint_failed",
                span: 3,
                thread: 0,
                ts_ns: 5_000_000,
                args: vec![("stage", ArgValue::S("shaping"))],
            }],
            series: vec![
                SeriesRow {
                    name: "place.outer",
                    span: 3,
                    iter: 0,
                    values: vec![("hpwl", 12.0), ("overflow", 0.9)],
                },
                SeriesRow {
                    name: "place.outer",
                    span: 3,
                    iter: 1,
                    values: vec![("hpwl", 9.5), ("overflow", 0.4)],
                },
            ],
            metrics: vec![
                MetricSnapshot {
                    name: "qor.legalized.hpwl",
                    slot: None,
                    value: MetricValue::Gauge(123.25),
                },
                MetricSnapshot {
                    name: "qor.timing.wns",
                    slot: None,
                    value: MetricValue::Gauge(-0.5),
                },
                MetricSnapshot {
                    name: "vpr.evals",
                    slot: None,
                    value: MetricValue::Counter(7),
                },
            ],
            dropped_events: 0,
        }
    }

    fn sample_entry() -> LedgerEntry {
        LedgerEntry::new(0xdead_beef_0042_1133, "unit", "harvest")
            .with_threads(4)
            .with_options("fast")
            .capture_trace(&sample_report())
    }

    #[test]
    fn capture_partitions_stages_to_root_wall_in_integer_ns() {
        let e = sample_entry();
        assert_eq!(e.root_wall_ns, 10_000_000);
        let names: Vec<&str> = e.stages.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["clustering", "shaping", "other"]);
        assert_eq!(e.stages[0].1, 3_000_000);
        assert_eq!(e.stages[1].1, 4_000_000);
        assert_eq!(e.stages[2].1, 3_000_000);
        let sum: i64 = e.stages.iter().map(|(_, ns)| ns).sum();
        assert_eq!(sum, e.root_wall_ns as i64);
        // QoR keeps gauges only, sorted; counters stay out.
        assert_eq!(e.qor_value("qor.legalized.hpwl"), Some(123.25));
        assert_eq!(e.qor_value("qor.timing.wns"), Some(-0.5));
        assert_eq!(e.qor.len(), 2);
        // Every value column gets a summary, in canonical (name, key)
        // order — the same order a harvested JSON report reproduces.
        assert_eq!(e.series.len(), 2);
        let s = &e.series[0];
        assert_eq!(
            (s.name.as_str(), s.key.as_str(), s.rows),
            ("place.outer", "hpwl", 2)
        );
        assert_eq!((s.first, s.last, s.min, s.max), (12.0, 9.5, 9.5, 12.0));
        let o = &e.series[1];
        assert_eq!(
            (o.name.as_str(), o.key.as_str(), o.rows),
            ("place.outer", "overflow", 2)
        );
        assert_eq!((o.first, o.last, o.min, o.max), (0.9, 0.4, 0.4, 0.9));
    }

    #[test]
    fn harvested_json_report_matches_captured_entry() {
        let report = sample_report();
        let flow = LedgerEntry::new(7, "unit", "flow").capture_trace(&report);
        let doc = parse(&report.to_json()).expect("report json parses");
        let harvested = entry_from_report_json(&doc, 7, "unit").expect("harvest");
        assert_eq!(harvested.root_wall_ns, flow.root_wall_ns);
        assert_eq!(harvested.stages, flow.stages);
        assert_eq!(harvested.qor, flow.qor);
        assert_eq!(harvested.series, flow.series);
    }

    #[test]
    fn jsonl_roundtrip_is_lossless_and_schema_valid() {
        let e = sample_entry();
        let line = e.to_json_line();
        let doc = parse(&line).expect("line parses");
        assert!(validate(&doc, schema().expect("schema")).is_empty());
        let back = LedgerEntry::parse_line(&line).expect("line loads");
        assert_eq!(e, back);
    }

    #[test]
    fn append_and_load_roundtrip_on_disk() {
        let path =
            std::env::temp_dir().join(format!("cp_ledger_unit_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let a = sample_entry();
        let b = sample_entry().with_status("interrupted:cancelled@flow.start");
        append(&path, &a).expect("append a");
        append(&path, &b).expect("append b");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded, vec![a, b]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trend_detects_doctored_regression_by_direction() {
        let clean = sample_entry();
        let worse_hpwl = sample_entry().doctor("qor.legalized.hpwl", 1.1);
        let report = trend(&[clean.clone(), worse_hpwl], &DiffOptions::default());
        assert_eq!(report.groups, 1);
        let bad = report.regressions();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "qor.legalized.hpwl");
        assert!(bad[0].delta_pct() > 9.0);
        // WNS moving toward zero is an improvement, not a regression.
        let better_wns = sample_entry().doctor("qor.timing.wns", 0.5);
        let report = trend(&[clean.clone(), better_wns], &DiffOptions::default());
        assert!(report.regressions().is_empty());
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "qor.timing.wns" && r.improved));
        // WNS moving away from zero regresses.
        let worse_wns = sample_entry().doctor("qor.timing.wns", 2.0);
        let report = trend(&[clean, worse_wns], &DiffOptions::default());
        assert_eq!(report.regressions().len(), 1);
    }

    #[test]
    fn trend_skips_singletons_and_interrupted_runs() {
        let a = sample_entry();
        let mut b = sample_entry();
        b.fingerprint = 0x1;
        let interrupted = sample_entry().with_status("interrupted:deadline@place.outer");
        let report = trend(&[a, b, interrupted], &DiffOptions::default());
        // Two fingerprints, both with a single *completed* run.
        assert_eq!(report.groups, 2);
        assert_eq!(report.singletons, 2);
        assert!(report.rows.is_empty());
    }

    #[test]
    fn trend_baseline_is_best_of_earlier_runs() {
        let best = sample_entry().doctor("qor.legalized.hpwl", 0.9);
        let middle = sample_entry();
        // Latest matches the *middle* run: still a regression vs best.
        let latest = sample_entry();
        let report = trend(&[best, middle, latest], &DiffOptions::default());
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "qor.legalized.hpwl")
            .expect("hpwl row");
        assert!((row.baseline - 123.25 * 0.9).abs() < 1e-9);
        assert!(row.regressed);
    }

    #[test]
    fn directions_cover_the_qor_namespace() {
        assert_eq!(
            qor_direction("qor.legalized.hpwl"),
            Direction::LowerIsBetter
        );
        assert_eq!(qor_direction("qor.route.rwl"), Direction::LowerIsBetter);
        assert_eq!(qor_direction("qor.power.total"), Direction::LowerIsBetter);
        assert_eq!(qor_direction("qor.timing.wns"), Direction::HigherIsBetter);
        assert_eq!(qor_direction("qor.timing.tns"), Direction::HigherIsBetter);
        assert_eq!(
            qor_direction("qor.timing.hold_wns"),
            Direction::HigherIsBetter
        );
        assert_eq!(qor_direction("qor.cluster.count"), Direction::Informational);
    }

    #[test]
    fn stage_history_feeds_progress_eta() {
        let e = sample_entry();
        let hist = e.stage_history();
        assert_eq!(hist.len(), 2, "other row excluded");
        assert!(hist
            .iter()
            .any(|(n, s)| n == "clustering" && (*s - 3e-3).abs() < 1e-12));
    }
}
