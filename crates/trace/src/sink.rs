//! Live event streaming: a bounded, non-blocking subscriber channel fed
//! from the record sites, plus a [`ProgressSink`] that folds raw events
//! into stage-level progress and ETA estimates.
//!
//! # Hot-path cost model
//!
//! The level check in `lib.rs` stays the only cost when tracing is off:
//! one relaxed atomic load per record site, nothing else. When tracing is
//! on but no sink is attached, each record site pays exactly one *more*
//! relaxed load ([`sink_attached`]) on top of its normal buffering work.
//! Only when a sink is attached does the site build a [`SinkEvent`] and
//! push it into the bounded ring under a short mutex hold.
//!
//! # Overflow policy
//!
//! The channel is bounded ([`attach_sink`] picks the capacity). A full
//! ring never blocks the producer: the event is dropped and a cumulative
//! counter incremented. Because record sites emit deterministically for a
//! deterministic run, the drop *count* is deterministic too (only the
//! interleaving order of surviving events varies across thread
//! schedules) — pinned by the `ledger_stream` suite.
//!
//! # Consumption
//!
//! Consumption is caller-owned and pull-based: [`drain_sink`] moves the
//! buffered events out (with the cumulative drop counter), [`pump_sink`]
//! drains and dispatches to a [`TraceSink`] implementation. The producer
//! side never runs subscriber code, so a slow or panicking subscriber
//! cannot stall or poison the flow.

use crate::{lock, ArgValue};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Events

/// One streamed telemetry event, as observed at a record site.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkEvent {
    /// A span opened (emitted from `span_with`).
    SpanOpen {
        /// Span id (process-wide, never 0).
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Static span name.
        name: &'static str,
        /// Ordinal of the opening thread.
        thread: u32,
        /// Start, nanoseconds since the trace epoch.
        start_ns: u64,
    },
    /// A span closed (emitted from the guard's `Drop`).
    SpanClose {
        /// Span id.
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Static span name.
        name: &'static str,
        /// Ordinal of the opening thread.
        thread: u32,
        /// Start, nanoseconds since the trace epoch.
        start_ns: u64,
        /// End, nanoseconds since the trace epoch.
        end_ns: u64,
    },
    /// A point-in-time event (recovery events, fallbacks).
    Instant {
        /// Static event name.
        name: &'static str,
        /// Enclosing span at emission time (0 = none).
        span: u64,
        /// Ordinal of the emitting thread.
        thread: u32,
        /// Timestamp, nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Attached key/value arguments.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// One convergence-series row (level `Full` only).
    SeriesPoint {
        /// Static series name.
        name: &'static str,
        /// Enclosing span at emission time (0 = none).
        span: u64,
        /// Iteration index within the series.
        iter: u64,
        /// Named values for this iteration.
        values: Vec<(&'static str, f64)>,
    },
    /// A counter update carrying the new per-slot total.
    Counter {
        /// Static counter name.
        name: &'static str,
        /// Metric slot ([`crate::NO_SLOT`] when unslotted).
        slot: u32,
        /// The counter's value after the update.
        total: u64,
    },
    /// A gauge update.
    Gauge {
        /// Static gauge name.
        name: &'static str,
        /// The new gauge value.
        value: f64,
    },
}

impl SinkEvent {
    /// The event's timestamp in nanoseconds since the trace epoch, when
    /// it carries one (metric updates do not read the clock).
    pub fn ts_ns(&self) -> Option<u64> {
        match self {
            SinkEvent::SpanOpen { start_ns, .. } => Some(*start_ns),
            SinkEvent::SpanClose { end_ns, .. } => Some(*end_ns),
            SinkEvent::Instant { ts_ns, .. } => Some(*ts_ns),
            SinkEvent::SeriesPoint { .. } | SinkEvent::Counter { .. } | SinkEvent::Gauge { .. } => {
                None
            }
        }
    }
}

/// A subscriber receiving drained [`SinkEvent`]s via [`pump_sink`].
///
/// Subscribers run on the *consumer's* thread, never at a record site, so
/// implementations may be arbitrarily slow without affecting the flow.
pub trait TraceSink {
    /// Called once per drained event, in ring (arrival) order.
    fn on_event(&mut self, event: &SinkEvent);

    /// Called after each pump with the cumulative number of events
    /// dropped on overflow since the sink was attached.
    fn on_overflow(&mut self, dropped_total: u64) {
        let _ = dropped_total;
    }
}

// ---------------------------------------------------------------------------
// The bounded channel

/// Fast-path flag: record sites check this with one relaxed load before
/// doing any sink work. Kept separate from the level byte so the
/// trace-off cost stays exactly one load.
static SINK_ATTACHED: AtomicBool = AtomicBool::new(false);

struct Channel {
    ring: VecDeque<SinkEvent>,
    capacity: usize,
    dropped: u64,
}

static CHANNEL: OnceLock<Mutex<Option<Channel>>> = OnceLock::new();

fn channel() -> &'static Mutex<Option<Channel>> {
    CHANNEL.get_or_init(Mutex::default)
}

/// `true` when a sink channel is attached — one relaxed atomic load.
#[inline]
pub fn sink_attached() -> bool {
    SINK_ATTACHED.load(Ordering::Relaxed)
}

/// Attaches the process-wide sink channel with the given ring capacity
/// (clamped to ≥ 1). Any previously attached channel is replaced and its
/// buffered events discarded. Events recorded while attached are buffered
/// until [`drain_sink`]/[`pump_sink`]; on overflow the newest event is
/// dropped and counted instead of blocking the producer.
pub fn attach_sink(capacity: usize) {
    let capacity = capacity.max(1);
    let mut ch = lock(channel());
    *ch = Some(Channel {
        // Pre-size modestly; the ring grows on demand up to `capacity`.
        ring: VecDeque::with_capacity(capacity.min(1024)),
        capacity,
        dropped: 0,
    });
    SINK_ATTACHED.store(true, Ordering::SeqCst);
}

/// Detaches the sink channel, discarding buffered events. Returns the
/// cumulative overflow-drop count for the detached channel (0 when none
/// was attached).
pub fn detach_sink() -> u64 {
    SINK_ATTACHED.store(false, Ordering::SeqCst);
    lock(channel()).take().map_or(0, |c| c.dropped)
}

/// Pushes one event into the attached channel. Called by record sites
/// only after [`sink_attached`] returned true; tolerates a concurrent
/// detach (the event is silently discarded).
pub(crate) fn emit(event: SinkEvent) {
    let mut ch = lock(channel());
    if let Some(c) = ch.as_mut() {
        if c.ring.len() < c.capacity {
            c.ring.push_back(event);
        } else {
            c.dropped += 1;
        }
    }
}

/// A drained batch: the buffered events (in arrival order) plus the
/// channel's cumulative overflow-drop counter.
#[derive(Debug, Default)]
pub struct SinkBatch {
    /// Events moved out of the ring, oldest first.
    pub events: Vec<SinkEvent>,
    /// Total events dropped on overflow since [`attach_sink`].
    pub dropped: u64,
}

/// Moves every buffered event out of the channel. Non-destructive to the
/// attachment itself — recording continues into the (now empty) ring.
pub fn drain_sink() -> SinkBatch {
    let mut ch = lock(channel());
    match ch.as_mut() {
        Some(c) => SinkBatch {
            events: c.ring.drain(..).collect(),
            dropped: c.dropped,
        },
        None => SinkBatch::default(),
    }
}

/// Drains the channel and dispatches each event to `sink`, then reports
/// the cumulative drop counter via [`TraceSink::on_overflow`]. Returns
/// the number of events dispatched.
pub fn pump_sink(sink: &mut dyn TraceSink) -> usize {
    let batch = drain_sink();
    for event in &batch.events {
        sink.on_event(event);
    }
    sink.on_overflow(batch.dropped);
    batch.events.len()
}

// ---------------------------------------------------------------------------
// ProgressSink

/// Lifecycle of one pipeline stage as seen by the [`ProgressSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageState {
    /// No span with the stage's name has opened yet.
    Pending,
    /// The stage span is open.
    Running {
        /// The stage span's start timestamp (trace-epoch ns).
        since_ns: u64,
    },
    /// The stage span closed.
    Done {
        /// The stage span's wall time in nanoseconds.
        wall_ns: u64,
    },
}

/// A point-in-time summary produced by [`ProgressSink::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Per-stage lifecycle states, in configured order.
    pub stages: Vec<(String, StageState)>,
    /// Number of stages in [`StageState::Done`].
    pub done_stages: usize,
    /// Estimated completion fraction in `[0, 1]` — weighted by
    /// historical stage timings when available, else by stage count.
    pub fraction: f64,
    /// Estimated remaining seconds, from historical stage timings.
    /// `None` when no history was provided.
    pub eta_s: Option<f64>,
    /// Global-placer CG iteration ticks observed (`place.outer` rows).
    pub cg_iterations: u64,
    /// V-P&R cluster evaluations started (`vpr.cluster` span opens).
    pub vpr_started: u64,
    /// V-P&R cluster evaluations finished (`vpr.cluster` span closes).
    pub vpr_done: u64,
    /// Completion fraction of the V-P&R sweep: against the expected
    /// cluster count when set, else against the started count.
    pub vpr_fraction: Option<f64>,
    /// `recovery.*` instants observed (checkpoints, fallbacks, resume).
    pub recovery_events: u64,
    /// Cumulative overflow-drop count last reported by the channel.
    pub dropped: u64,
    /// Timestamp of the newest event folded in (trace-epoch ns). Used as
    /// "now" for running-stage elapsed time, keeping snapshots
    /// deterministic for a given event sequence.
    pub last_event_ns: u64,
}

/// Folds streamed [`SinkEvent`]s into stage-level progress: which
/// pipeline stages have started/finished, CG-iteration ticks from the
/// `place.outer` series, per-cluster V-P&R completion, and an ETA from
/// historical stage timings. Pure folding — all state comes from the
/// events themselves, so identical event sequences yield identical
/// snapshots.
pub struct ProgressSink {
    stages: Vec<(String, StageState)>,
    history: Vec<(String, f64)>,
    cg_series: String,
    vpr_span: String,
    cg_iterations: u64,
    vpr_expected: Option<u64>,
    vpr_started: u64,
    vpr_done: u64,
    recovery_events: u64,
    dropped: u64,
    last_event_ns: u64,
}

impl ProgressSink {
    /// Creates a sink tracking the given stage names (the flow's
    /// top-level stage spans, in pipeline order).
    pub fn new<S: AsRef<str>>(stages: &[S]) -> Self {
        ProgressSink {
            stages: stages
                .iter()
                .map(|s| (s.as_ref().to_string(), StageState::Pending))
                .collect(),
            history: Vec::new(),
            cg_series: "place.outer".to_string(),
            vpr_span: "vpr.cluster".to_string(),
            cg_iterations: 0,
            vpr_expected: None,
            vpr_started: 0,
            vpr_done: 0,
            recovery_events: 0,
            dropped: 0,
            last_event_ns: 0,
        }
    }

    /// Supplies historical per-stage wall seconds (e.g. from a prior
    /// ledger entry) to weight the completion fraction and derive ETAs.
    pub fn with_history<S: AsRef<str>>(mut self, history: &[(S, f64)]) -> Self {
        self.history = history
            .iter()
            .map(|(n, s)| (n.as_ref().to_string(), *s))
            .collect();
        self
    }

    /// Sets the expected number of V-P&R cluster evaluations, making
    /// `vpr_fraction` meaningful before the sweep finishes.
    pub fn expect_vpr_clusters(mut self, n: u64) -> Self {
        self.vpr_expected = Some(n);
        self
    }

    /// Overrides the series name counted as CG-iteration ticks
    /// (default `place.outer`).
    pub fn cg_series(mut self, name: &str) -> Self {
        self.cg_series = name.to_string();
        self
    }

    /// Overrides the span name counted as one V-P&R cluster evaluation
    /// (default `vpr.cluster`).
    pub fn vpr_span(mut self, name: &str) -> Self {
        self.vpr_span = name.to_string();
        self
    }

    fn stage_mut(&mut self, name: &str) -> Option<&mut StageState> {
        self.stages
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// The historical weight of a stage: its recorded seconds, else the
    /// mean of the recorded stages (so an unseen stage still advances
    /// the fraction), else 0 when there is no history at all.
    fn weight(&self, name: &str) -> f64 {
        if let Some((_, s)) = self.history.iter().find(|(n, _)| n == name) {
            return *s;
        }
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(|(_, s)| *s).sum::<f64>() / self.history.len() as f64
    }

    /// Produces the current progress summary.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let done_stages = self
            .stages
            .iter()
            .filter(|(_, s)| matches!(s, StageState::Done { .. }))
            .count();
        let (fraction, eta_s) = if self.history.is_empty() {
            let f = if self.stages.is_empty() {
                0.0
            } else {
                done_stages as f64 / self.stages.len() as f64
            };
            (f, None)
        } else {
            let mut total = 0.0;
            let mut credit = 0.0;
            for (name, state) in &self.stages {
                let w = self.weight(name);
                total += w;
                match state {
                    StageState::Done { .. } => credit += w,
                    StageState::Running { since_ns } => {
                        let elapsed = self.last_event_ns.saturating_sub(*since_ns) as f64 * 1e-9;
                        credit += elapsed.min(w);
                    }
                    StageState::Pending => {}
                }
            }
            if total > 0.0 {
                (
                    (credit / total).clamp(0.0, 1.0),
                    Some((total - credit).max(0.0)),
                )
            } else {
                (0.0, Some(0.0))
            }
        };
        let vpr_fraction = match (self.vpr_expected, self.vpr_started) {
            (Some(n), _) if n > 0 => Some((self.vpr_done as f64 / n as f64).clamp(0.0, 1.0)),
            (None, started) if started > 0 => Some(self.vpr_done as f64 / started as f64),
            _ => None,
        };
        ProgressSnapshot {
            stages: self.stages.clone(),
            done_stages,
            fraction,
            eta_s,
            cg_iterations: self.cg_iterations,
            vpr_started: self.vpr_started,
            vpr_done: self.vpr_done,
            vpr_fraction,
            recovery_events: self.recovery_events,
            dropped: self.dropped,
            last_event_ns: self.last_event_ns,
        }
    }
}

impl TraceSink for ProgressSink {
    fn on_event(&mut self, event: &SinkEvent) {
        if let Some(ts) = event.ts_ns() {
            self.last_event_ns = self.last_event_ns.max(ts);
        }
        match event {
            SinkEvent::SpanOpen { name, start_ns, .. } => {
                if *name == self.vpr_span {
                    self.vpr_started += 1;
                } else if let Some(state) = self.stage_mut(name) {
                    if matches!(state, StageState::Pending) {
                        *state = StageState::Running {
                            since_ns: *start_ns,
                        };
                    }
                }
            }
            SinkEvent::SpanClose {
                name,
                start_ns,
                end_ns,
                ..
            } => {
                if *name == self.vpr_span {
                    self.vpr_done += 1;
                } else if let Some(state) = self.stage_mut(name) {
                    *state = StageState::Done {
                        wall_ns: end_ns.saturating_sub(*start_ns),
                    };
                }
            }
            SinkEvent::SeriesPoint { name, iter, .. } => {
                if *name == self.cg_series {
                    self.cg_iterations = self.cg_iterations.max(iter + 1);
                }
            }
            SinkEvent::Instant { name, .. } => {
                if name.starts_with("recovery.") {
                    self.recovery_events += 1;
                }
            }
            SinkEvent::Counter { .. } | SinkEvent::Gauge { .. } => {}
        }
    }

    fn on_overflow(&mut self, dropped_total: u64) {
        self.dropped = dropped_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(id: u64, name: &'static str, start_ns: u64) -> SinkEvent {
        SinkEvent::SpanOpen {
            id,
            parent: 0,
            name,
            thread: 0,
            start_ns,
        }
    }

    fn close(id: u64, name: &'static str, start_ns: u64, end_ns: u64) -> SinkEvent {
        SinkEvent::SpanClose {
            id,
            parent: 0,
            name,
            thread: 0,
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn progress_folds_stages_ticks_and_vpr() {
        let mut p = ProgressSink::new(&["clustering", "shaping", "ppa"]).expect_vpr_clusters(4);
        p.on_event(&open(1, "clustering", 0));
        p.on_event(&close(1, "clustering", 0, 2_000_000_000));
        p.on_event(&open(2, "shaping", 2_000_000_000));
        for i in 0..3 {
            p.on_event(&SinkEvent::SeriesPoint {
                name: "place.outer",
                span: 2,
                iter: i,
                values: vec![("hpwl", 10.0 - i as f64)],
            });
        }
        for id in 10..13 {
            p.on_event(&open(id, "vpr.cluster", 0));
        }
        p.on_event(&close(10, "vpr.cluster", 0, 1));
        p.on_event(&close(11, "vpr.cluster", 0, 2));
        p.on_event(&SinkEvent::Instant {
            name: "recovery.checkpoint_failed",
            span: 2,
            thread: 0,
            ts_ns: 3_000_000_000,
            args: vec![],
        });
        let s = p.snapshot();
        assert_eq!(s.done_stages, 1);
        assert_eq!(
            s.stages[0].1,
            StageState::Done {
                wall_ns: 2_000_000_000
            }
        );
        assert!(matches!(s.stages[1].1, StageState::Running { .. }));
        assert_eq!(s.stages[2].1, StageState::Pending);
        assert_eq!(s.cg_iterations, 3);
        assert_eq!(s.vpr_started, 3);
        assert_eq!(s.vpr_done, 2);
        assert_eq!(s.vpr_fraction, Some(0.5));
        assert_eq!(s.recovery_events, 1);
        assert!((s.fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.eta_s, None);
    }

    #[test]
    fn progress_eta_uses_historical_timings() {
        let mut p =
            ProgressSink::new(&["a", "b", "c"]).with_history(&[("a", 2.0), ("b", 6.0), ("c", 2.0)]);
        p.on_event(&open(1, "a", 0));
        p.on_event(&close(1, "a", 0, 2_000_000_000));
        // "b" has run 3 of its historical 6 seconds.
        p.on_event(&open(2, "b", 2_000_000_000));
        p.on_event(&SinkEvent::Instant {
            name: "tick",
            span: 2,
            thread: 0,
            ts_ns: 5_000_000_000,
            args: vec![],
        });
        let s = p.snapshot();
        // credit = 2 (a done) + 3 (b elapsed) of total 10.
        assert!((s.fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.eta_s, Some(5.0));
        // A running stage never earns more than its historical weight.
        p.on_event(&SinkEvent::Instant {
            name: "tick",
            span: 2,
            thread: 0,
            ts_ns: 60_000_000_000,
            args: vec![],
        });
        let s = p.snapshot();
        assert!((s.fraction - 0.8).abs() < 1e-12);
        assert_eq!(s.eta_s, Some(2.0));
    }

    #[test]
    fn channel_bounds_drops_and_counts() {
        // The channel is process-global; serialize with other tests.
        let _g = crate::test_serial();
        attach_sink(3);
        assert!(sink_attached());
        for i in 0..5 {
            emit(SinkEvent::Gauge {
                name: "g",
                value: i as f64,
            });
        }
        let batch = drain_sink();
        assert_eq!(batch.events.len(), 3);
        assert_eq!(batch.dropped, 2);
        // Drain frees capacity; the drop counter stays cumulative.
        emit(SinkEvent::Gauge {
            name: "g",
            value: 9.0,
        });
        let batch = drain_sink();
        assert_eq!(batch.events.len(), 1);
        assert_eq!(batch.dropped, 2);
        assert_eq!(detach_sink(), 2);
        assert!(!sink_attached());
        // Emitting after detach is a silent no-op.
        emit(SinkEvent::Gauge {
            name: "g",
            value: 0.0,
        });
        assert_eq!(drain_sink().events.len(), 0);
    }

    #[test]
    fn pump_dispatches_in_order_and_reports_overflow() {
        struct Tape {
            names: Vec<&'static str>,
            dropped: u64,
        }
        impl TraceSink for Tape {
            fn on_event(&mut self, event: &SinkEvent) {
                if let SinkEvent::Instant { name, .. } = event {
                    self.names.push(name);
                }
            }
            fn on_overflow(&mut self, dropped_total: u64) {
                self.dropped = dropped_total;
            }
        }
        let _g = crate::test_serial();
        attach_sink(2);
        for name in ["first", "second", "third"] {
            emit(SinkEvent::Instant {
                name,
                span: 0,
                thread: 0,
                ts_ns: 0,
                args: vec![],
            });
        }
        let mut tape = Tape {
            names: vec![],
            dropped: 0,
        };
        assert_eq!(pump_sink(&mut tape), 2);
        assert_eq!(tape.names, vec!["first", "second"]);
        assert_eq!(tape.dropped, 1);
        detach_sink();
    }
}
