//! Trace analytics: self-time attribution, critical-path extraction,
//! flamegraph export and run-over-run report diffing.
//!
//! [`Analysis`] is the common entry point. It is built either from a live
//! [`TraceReport`] ([`Analysis::from_report`]) or from a previously
//! exported structured-JSON document ([`Analysis::from_json`]), so the
//! same analytics run in-process (the `tracetool gate` fresh run) and
//! offline on a committed artifact (`tracetool summarize/diff` on
//! `TRACE_report.json`).
//!
//! # Self-time
//!
//! A span's **self-time** is its wall time minus the wall time of its
//! *direct* children: `self(s) = wall(s) − Σ wall(child)`. With parallel
//! children (cross-thread adoption via
//! [`run_with_parent`](crate::run_with_parent)) the children's wall
//! times can overlap and sum to more than the parent's, so self-time can
//! be **negative** — that is a signal (the span fanned work out), not an
//! error. The definition telescopes: summed over every span of a tree,
//! self-time equals the root's wall time *exactly* (in integer
//! nanoseconds), which is what makes per-name aggregation a partition of
//! the run and lets `tracetool gate` reason about shares.
//!
//! # Critical path
//!
//! The critical path is extracted by walking from the root and
//! repeatedly descending into the child with the largest wall time (ties
//! broken by earliest start, then insertion order). Parent/child links
//! are id-based, so a child adopted onto another thread by the
//! `cp-parallel` pool is followed like any other — the path freely
//! crosses threads.
//!
//! # Diffing and the noise model
//!
//! [`TraceDiff`] compares two runs span-name-by-span-name and
//! metric-by-metric. Runtime comparisons use a relative-tolerance noise
//! model (`|new − base| > max(abs_tol, rel_tol·|base|)` counts as a
//! change) because wall-clock jitters; metric comparisons default to
//! exact because the flow's outputs are bitwise deterministic.
//! [`TraceDiff::between_many`] is **min-of-N aware**: given several
//! repetitions of each run it compares the per-name *minimum* times, the
//! same noise-rejection the bench bins use.

use crate::json::Json;
use crate::report::{MetricValue, TraceReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Analysis

/// One span, resolved into tree form.
#[derive(Debug, Clone)]
struct ASpan {
    name: String,
    thread: u32,
    start_ns: u64,
    dur_ns: u64,
    children: Vec<usize>,
    /// `dur_ns − Σ child dur_ns`; negative when children overlapped
    /// (parallel fan-out).
    self_ns: i64,
}

/// A scalar-valued view of one metric (histograms expose count and sum).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricReading {
    /// Metric name.
    pub name: String,
    /// Slot for per-instance metrics.
    pub slot: Option<u32>,
    /// The reading.
    pub value: MetricReadingValue,
}

/// The value kinds a [`MetricReading`] can carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricReadingValue {
    /// Monotonic counter.
    Counter(f64),
    /// Latest-value gauge.
    Gauge(f64),
    /// Histogram, reduced to observation count and sum.
    Histogram {
        /// Observations recorded.
        count: f64,
        /// Sum of observations.
        sum: f64,
    },
}

/// Aggregated per-name timing (the rows of a self-time profile).
#[derive(Debug, Clone, PartialEq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Spans with this name.
    pub count: u64,
    /// Total wall seconds (nested same-name spans count repeatedly).
    pub wall_s: f64,
    /// Total self seconds (a partition of the root's wall time).
    pub self_s: f64,
}

/// One step of the critical path, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// Thread ordinal the span ran on.
    pub thread: u32,
    /// Start relative to the trace epoch, seconds.
    pub start_s: f64,
    /// Wall seconds.
    pub wall_s: f64,
    /// Self seconds (wall minus direct children).
    pub self_s: f64,
}

/// An analyzed span tree plus the run's metric readings.
#[derive(Debug, Clone)]
pub struct Analysis {
    spans: Vec<ASpan>,
    root: usize,
    metrics: Vec<MetricReading>,
    /// Events lost to the collector's buffer cap.
    pub dropped_events: u64,
}

impl Analysis {
    /// Builds the analysis from a live report.
    ///
    /// # Errors
    ///
    /// When the report's root span is missing from `spans`.
    pub fn from_report(report: &TraceReport) -> Result<Self, String> {
        let raw: Vec<(u64, u64, String, u32, u64, u64)> = report
            .spans
            .iter()
            .map(|s| {
                (
                    s.id,
                    s.parent,
                    s.name.to_string(),
                    s.thread,
                    s.start_ns,
                    s.end_ns.saturating_sub(s.start_ns),
                )
            })
            .collect();
        let metrics = report
            .metrics
            .iter()
            .map(|m| MetricReading {
                name: m.name.to_string(),
                slot: m.slot,
                value: match &m.value {
                    MetricValue::Counter(v) => MetricReadingValue::Counter(*v as f64),
                    MetricValue::Gauge(v) => MetricReadingValue::Gauge(*v),
                    MetricValue::Histogram { count, sum, .. } => MetricReadingValue::Histogram {
                        count: *count as f64,
                        sum: *sum,
                    },
                },
            })
            .collect();
        Self::build(raw, report.root, metrics, report.dropped_events)
    }

    /// Builds the analysis from a parsed `TRACE_report.json` document
    /// (the output of [`TraceReport::to_json`]).
    ///
    /// # Errors
    ///
    /// When required fields are missing or the root span is absent.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let root_id =
            doc.get("root")
                .and_then(Json::as_f64)
                .ok_or_else(|| "report has no numeric \"root\"".to_string())? as u64;
        let spans = doc
            .get("spans")
            .and_then(Json::as_array)
            .ok_or_else(|| "report has no \"spans\" array".to_string())?;
        let mut raw = Vec::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            let field = |k: &str| {
                s.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("span {i} has no numeric \"{k}\""))
            };
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("span {i} has no string \"name\""))?;
            raw.push((
                field("id")? as u64,
                field("parent")? as u64,
                name.to_string(),
                field("thread")? as u32,
                (field("start_us")? * 1e3).round() as u64,
                (field("dur_us")? * 1e3).round() as u64,
            ));
        }
        let mut metrics = Vec::new();
        if let Some(ms) = doc.get("metrics").and_then(Json::as_array) {
            for m in ms {
                if let Some(r) = metric_from_json(m) {
                    metrics.push(r);
                }
            }
        }
        let dropped = doc
            .get("dropped_events")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        Self::build(raw, root_id, metrics, dropped)
    }

    /// `raw`: `(id, parent, name, thread, start_ns, dur_ns)` per span.
    fn build(
        raw: Vec<(u64, u64, String, u32, u64, u64)>,
        root_id: u64,
        metrics: Vec<MetricReading>,
        dropped_events: u64,
    ) -> Result<Self, String> {
        let index_of: BTreeMap<u64, usize> =
            raw.iter().enumerate().map(|(i, r)| (r.0, i)).collect();
        let root = *index_of
            .get(&root_id)
            .ok_or_else(|| format!("root span {root_id} not present in the report"))?;
        let mut spans: Vec<ASpan> = raw
            .iter()
            .map(|(_, _, name, thread, start_ns, dur_ns)| ASpan {
                name: name.clone(),
                thread: *thread,
                start_ns: *start_ns,
                dur_ns: *dur_ns,
                children: Vec::new(),
                self_ns: *dur_ns as i64,
            })
            .collect();
        for (i, (id, parent, ..)) in raw.iter().enumerate() {
            if *id == root_id {
                continue;
            }
            // Orphans (parent pruned from the capture) attach to the root
            // so the tree stays connected and self-time still telescopes.
            let p = index_of.get(parent).copied().unwrap_or(root);
            spans[p].children.push(i);
            spans[p].self_ns -= raw[i].5 as i64;
        }
        // Children in start order (stable for equal starts: insertion
        // order above follows the report's span order).
        let keys: Vec<(u64, u64)> = raw.iter().map(|r| (r.4, r.0)).collect();
        for s in &mut spans {
            s.children.sort_by_key(|&c| keys[c]);
        }
        Ok(Self {
            spans,
            root,
            metrics,
            dropped_events,
        })
    }

    /// Number of spans analyzed.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// The root span's name.
    pub fn root_name(&self) -> &str {
        &self.spans[self.root].name
    }

    /// The root span's wall time, seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.spans[self.root].dur_ns as f64 * 1e-9
    }

    /// The metric readings captured with the trace.
    pub fn metrics(&self) -> &[MetricReading] {
        &self.metrics
    }

    /// Gauge readings whose name starts with `prefix`, in name order —
    /// how `tracetool gate` pulls the `qor.*` snapshot out of a report.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .metrics
            .iter()
            .filter(|m| m.name.starts_with(prefix))
            .filter_map(|m| match m.value {
                MetricReadingValue::Gauge(v) => Some((m.name.clone(), v)),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total self-time across every span, seconds. Telescopes to
    /// [`Self::duration_seconds`] exactly (integer-nanosecond identity)
    /// when every span descends from the root.
    pub fn total_self_seconds(&self) -> f64 {
        self.spans.iter().map(|s| s.self_ns).sum::<i64>() as f64 * 1e-9
    }

    /// Per-name aggregation, sorted by descending self-time (ties by
    /// name). The `self_s` column is a partition of the root wall time.
    pub fn self_time_by_name(&self) -> Vec<NameAgg> {
        let mut by_name: BTreeMap<&str, (u64, i64, i64)> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(&s.name).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_ns as i64;
            e.2 += s.self_ns;
        }
        let mut rows: Vec<NameAgg> = by_name
            .into_iter()
            .map(|(name, (count, wall, selft))| NameAgg {
                name: name.to_string(),
                count,
                wall_s: wall as f64 * 1e-9,
                self_s: selft as f64 * 1e-9,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_s
                .partial_cmp(&a.self_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// The index of the heaviest child of `i` (largest wall, ties to the
    /// earliest start, then lowest index), when `i` has children.
    fn heaviest_child(&self, i: usize) -> Option<usize> {
        self.spans[i].children.iter().copied().max_by(|&a, &b| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            sa.dur_ns
                .cmp(&sb.dur_ns)
                .then_with(|| sb.start_ns.cmp(&sa.start_ns))
                .then_with(|| b.cmp(&a))
        })
    }

    /// The critical path: root first, each step the heaviest child of the
    /// previous one. Crosses threads wherever cross-thread adoption put a
    /// child on another worker.
    pub fn critical_path(&self) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut cur = self.root;
        let mut depth = 0;
        loop {
            let s = &self.spans[cur];
            path.push(PathStep {
                name: s.name.clone(),
                depth,
                thread: s.thread,
                start_s: s.start_ns as f64 * 1e-9,
                wall_s: s.dur_ns as f64 * 1e-9,
                self_s: s.self_ns as f64 * 1e-9,
            });
            match self.heaviest_child(cur) {
                Some(c) => {
                    cur = c;
                    depth += 1;
                }
                None => return path,
            }
        }
    }

    /// Collapsed-stack ("folded") flamegraph export, loadable by inferno
    /// and speedscope: one line per distinct stack,
    /// `root;child;…;leaf <self_ns>`. Counts are self-time in integer
    /// nanoseconds, clamped at zero (a parallel fan-out span contributes
    /// its children's stacks, not a negative count); zero-count stacks
    /// are omitted. Sibling spans with the same name fold into one line.
    pub fn folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        let mut frames: Vec<String> = Vec::new();
        self.fold_into(self.root, &mut frames, &mut stacks);
        let mut out = String::new();
        for (stack, count) in stacks {
            if count > 0 {
                let _ = writeln!(out, "{stack} {count}");
            }
        }
        out
    }

    fn fold_into(&self, i: usize, frames: &mut Vec<String>, stacks: &mut BTreeMap<String, u64>) {
        let s = &self.spans[i];
        frames.push(sanitize_frame(&s.name));
        let stack = frames.join(";");
        *stacks.entry(stack).or_insert(0) += s.self_ns.max(0) as u64;
        for &c in &s.children {
            self.fold_into(c, frames, stacks);
        }
        frames.pop();
    }

    /// `(name, subtree self-time seconds)` for each direct child of the
    /// root, in start order. By the telescoping identity each subtree's
    /// self-time equals the child span's wall time, so these reconcile
    /// with [`TraceReport::stage_seconds`] to nanosecond precision.
    pub fn stage_self_seconds(&self) -> Vec<(String, f64)> {
        self.spans[self.root]
            .children
            .iter()
            .map(|&c| {
                (
                    self.spans[c].name.clone(),
                    self.subtree_self_ns(c) as f64 * 1e-9,
                )
            })
            .collect()
    }

    fn subtree_self_ns(&self, i: usize) -> i64 {
        let mut total = self.spans[i].self_ns;
        for &c in &self.spans[i].children {
            total += self.subtree_self_ns(c);
        }
        total
    }
}

fn metric_from_json(m: &Json) -> Option<MetricReading> {
    let name = m.get("name").and_then(Json::as_str)?.to_string();
    let slot = m.get("slot").and_then(Json::as_f64).map(|s| s as u32);
    let value = match m.get("kind").and_then(Json::as_str)? {
        "counter" => MetricReadingValue::Counter(m.get("value").and_then(Json::as_f64)?),
        "gauge" => MetricReadingValue::Gauge(m.get("value").and_then(Json::as_f64)?),
        "histogram" => MetricReadingValue::Histogram {
            count: m.get("count").and_then(Json::as_f64)?,
            sum: m.get("sum").and_then(Json::as_f64)?,
        },
        _ => return None,
    };
    Some(MetricReading { name, slot, value })
}

/// Folded-format frames may not contain the stack separator or line
/// breaks; spaces are fine (parsers split the count off the *last*
/// space).
fn sanitize_frame(name: &str) -> String {
    name.replace(';', ":").replace(['\n', '\r'], " ")
}

// ---------------------------------------------------------------------------
// Diff

/// Tolerances for [`TraceDiff`]: a change is *significant* when
/// `|new − base| > max(abs, rel·|base|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative tolerance on wall/self times (scheduling noise).
    pub time_rel_tol: f64,
    /// Absolute floor on time deltas, seconds (sub-floor spans jitter
    /// wildly in relative terms but never matter).
    pub time_abs_tol_s: f64,
    /// Relative tolerance on metric values; 0 = exact, the right default
    /// for a bitwise-deterministic flow.
    pub metric_rel_tol: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            time_rel_tol: 0.10,
            time_abs_tol_s: 1e-4,
            metric_rel_tol: 0.0,
        }
    }
}

/// What a [`DiffEntry`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Per-name self-time, seconds.
    SelfTime,
    /// Per-name total wall time, seconds.
    WallTime,
    /// Per-name span count.
    SpanCount,
    /// A metric value (counter/gauge value, histogram sum or count).
    Metric,
}

/// One significant difference between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// What changed.
    pub kind: DiffKind,
    /// Span name or metric name (histograms add `/count`).
    pub name: String,
    /// Baseline value (NaN when absent from the baseline).
    pub base: f64,
    /// New value (NaN when absent from the new run).
    pub new: f64,
}

impl DiffEntry {
    /// `new − base`.
    pub fn delta(&self) -> f64 {
        self.new - self.base
    }

    /// `new / base` (NaN when the base is 0 or either side is absent).
    pub fn ratio(&self) -> f64 {
        if self.base == 0.0 {
            f64::NAN
        } else {
            self.new / self.base
        }
    }

    /// `true` when the change is in the bad direction (more time, or any
    /// metric/count change at all).
    pub fn is_regression(&self) -> bool {
        match self.kind {
            DiffKind::SelfTime | DiffKind::WallTime => {
                self.new.is_nan() || self.base.is_nan() || self.new > self.base
            }
            DiffKind::SpanCount | DiffKind::Metric => true,
        }
    }
}

/// The significant differences between two runs (empty = within noise).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDiff {
    /// Significant changes, span rows first (by name), then metrics.
    pub entries: Vec<DiffEntry>,
}

/// Per-name `(count, wall_s, self_s)` after min-of-N reduction.
type TimeRows = BTreeMap<String, (u64, f64, f64)>;

impl TraceDiff {
    /// Diffs one baseline run against one new run.
    pub fn between(base: &Analysis, new: &Analysis, opts: &DiffOptions) -> Self {
        Self::between_many(&[base], &[new], opts)
    }

    /// Min-of-N diff: each side may supply several repetitions of the
    /// same configuration; per-name times are reduced to their minimum
    /// across repetitions before comparing (the bench bins' noise
    /// rejection). Metrics are taken from the first repetition of each
    /// side — a deterministic flow reproduces them exactly.
    ///
    /// Empty slices produce an empty diff.
    pub fn between_many(base: &[&Analysis], new: &[&Analysis], opts: &DiffOptions) -> Self {
        let (Some(b0), Some(n0)) = (base.first(), new.first()) else {
            return Self::default();
        };
        let mut entries = Vec::new();
        let b_rows = min_rows(base);
        let n_rows = min_rows(new);
        let mut names: Vec<&String> = b_rows.keys().chain(n_rows.keys()).collect();
        names.sort();
        names.dedup();
        for name in names {
            let b = b_rows.get(name.as_str());
            let n = n_rows.get(name.as_str());
            let (bc, bw, bs) = b.copied().unwrap_or((0, 0.0, 0.0));
            let (nc, nw, ns) = n.copied().unwrap_or((0, 0.0, 0.0));
            if bc != nc {
                entries.push(DiffEntry {
                    kind: DiffKind::SpanCount,
                    name: name.clone(),
                    base: bc as f64,
                    new: nc as f64,
                });
            }
            for (kind, bv, nv) in [(DiffKind::WallTime, bw, nw), (DiffKind::SelfTime, bs, ns)] {
                if significant(bv, nv, opts.time_rel_tol, opts.time_abs_tol_s) {
                    entries.push(DiffEntry {
                        kind,
                        name: name.clone(),
                        base: bv,
                        new: nv,
                    });
                }
            }
        }
        entries.extend(diff_metrics(b0, n0, opts));
        Self { entries }
    }

    /// `true` when nothing changed beyond the tolerances.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries that changed in the bad direction.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.is_regression()).collect()
    }
}

pub(crate) fn significant(base: f64, new: f64, rel: f64, abs: f64) -> bool {
    if base.is_nan() || new.is_nan() {
        return true;
    }
    (new - base).abs() > abs.max(rel * base.abs())
}

fn min_rows(side: &[&Analysis]) -> TimeRows {
    // Per name, keep the whole (count, wall, self) row from the
    // repetition with the smallest wall time. Self-time must ride along
    // with its wall rather than being minimized independently: it can be
    // legitimately negative under parallel fan-out, where a slower rep
    // would win an independent min and poison the baseline.
    let mut rows: TimeRows = BTreeMap::new();
    for (rep, a) in side.iter().enumerate() {
        for agg in a.self_time_by_name() {
            let e = rows
                .entry(agg.name)
                .or_insert((agg.count, agg.wall_s, agg.self_s));
            if rep > 0 && agg.wall_s < e.1 {
                *e = (agg.count, agg.wall_s, agg.self_s);
            }
        }
    }
    rows
}

/// Scalar views of one side's metrics, keyed for matching.
fn metric_scalars(a: &Analysis) -> BTreeMap<(String, Option<u32>), f64> {
    let mut out = BTreeMap::new();
    for m in a.metrics() {
        match m.value {
            MetricReadingValue::Counter(v) | MetricReadingValue::Gauge(v) => {
                out.insert((m.name.clone(), m.slot), v);
            }
            MetricReadingValue::Histogram { count, sum } => {
                out.insert((m.name.clone(), m.slot), sum);
                out.insert((format!("{}/count", m.name), m.slot), count);
            }
        }
    }
    out
}

fn diff_metrics(base: &Analysis, new: &Analysis, opts: &DiffOptions) -> Vec<DiffEntry> {
    let b = metric_scalars(base);
    let n = metric_scalars(new);
    let mut keys: Vec<&(String, Option<u32>)> = b.keys().chain(n.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut out = Vec::new();
    for key in keys {
        let bv = b.get(key).copied().unwrap_or(f64::NAN);
        let nv = n.get(key).copied().unwrap_or(f64::NAN);
        if significant(bv, nv, opts.metric_rel_tol, 0.0) {
            let name = match key.1 {
                Some(slot) => format!("{}[{slot}]", key.0),
                None => key.0.clone(),
            };
            out.push(DiffEntry {
                kind: DiffKind::Metric,
                name,
                base: bv,
                new: nv,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MetricSnapshot;
    use crate::SpanRecord;

    /// A tree with a parallel fan-out: root [0, 100ms] → stage a
    /// [0, 60ms] with two overlapping children on other threads
    /// (30ms + 40ms > stage wall − nothing), stage b [60ms, 100ms].
    fn sample() -> TraceReport {
        let span =
            |id, parent, name: &'static str, thread, start_ms: u64, end_ms: u64| SpanRecord {
                id,
                parent,
                name,
                thread,
                start_ns: start_ms * 1_000_000,
                end_ns: end_ms * 1_000_000,
                args: vec![],
            };
        TraceReport {
            root: 1,
            spans: vec![
                span(1, 0, "flow", 0, 0, 100),
                span(2, 1, "stage a", 0, 0, 60),
                span(3, 2, "work", 1, 5, 35),
                span(4, 2, "work", 2, 10, 50),
                span(5, 1, "stage b", 0, 60, 100),
            ],
            instants: vec![],
            series: vec![],
            metrics: vec![
                MetricSnapshot {
                    name: "qor.hpwl",
                    slot: None,
                    value: MetricValue::Gauge(1234.5),
                },
                MetricSnapshot {
                    name: "evals",
                    slot: None,
                    value: MetricValue::Counter(7),
                },
            ],
            dropped_events: 0,
        }
    }

    #[test]
    fn self_time_telescopes_to_root_wall() {
        let a = Analysis::from_report(&sample()).expect("analyzes");
        assert!((a.total_self_seconds() - a.duration_seconds()).abs() < 1e-12);
        // stage a: 60 − (30 + 40) = −10ms of self time (parallel children).
        let rows = a.self_time_by_name();
        let stage_a = rows.iter().find(|r| r.name == "stage a").expect("present");
        assert!((stage_a.self_s - (-0.010)).abs() < 1e-12);
        let work = rows.iter().find(|r| r.name == "work").expect("present");
        assert_eq!(work.count, 2);
        assert!((work.self_s - 0.070).abs() < 1e-12);
    }

    #[test]
    fn critical_path_descends_heaviest_children_across_threads() {
        let a = Analysis::from_report(&sample()).expect("analyzes");
        let path = a.critical_path();
        let names: Vec<&str> = path.iter().map(|p| p.name.as_str()).collect();
        // stage a (60ms) beats stage b (40ms); under it the 40ms child
        // on thread 2 beats the 30ms child on thread 1.
        assert_eq!(names, ["flow", "stage a", "work"]);
        assert_eq!(path[2].thread, 2);
        assert_eq!(path[2].depth, 2);
    }

    #[test]
    fn folded_clamps_negative_self_and_merges_siblings() {
        let a = Analysis::from_report(&sample()).expect("analyzes");
        let folded = a.folded();
        let lines: Vec<&str> = folded.lines().collect();
        // "flow" has zero self and "flow;stage a" negative self → both
        // omitted; the two "work" siblings fold into one stack.
        assert_eq!(
            lines,
            ["flow;stage a;work 70000000", "flow;stage b 40000000"]
        );
    }

    #[test]
    fn stage_self_reconciles_with_stage_walls() {
        let r = sample();
        let a = Analysis::from_report(&r).expect("analyzes");
        let stages = r.stage_seconds();
        let selfs = a.stage_self_seconds();
        assert_eq!(stages.len(), selfs.len());
        for ((sn, sw), (an, aself)) in stages.iter().zip(&selfs) {
            assert_eq!(sn, an);
            assert!((sw - aself).abs() < 1e-9, "{sn}: {sw} vs {aself}");
        }
    }

    #[test]
    fn json_round_trip_preserves_analysis() {
        let r = sample();
        let direct = Analysis::from_report(&r).expect("analyzes");
        let doc = crate::json::parse(&r.to_json()).expect("parses");
        let via_json = Analysis::from_json(&doc).expect("analyzes");
        assert_eq!(direct.span_count(), via_json.span_count());
        assert_eq!(direct.self_time_by_name(), via_json.self_time_by_name());
        assert_eq!(direct.critical_path(), via_json.critical_path());
        assert_eq!(direct.folded(), via_json.folded());
        assert_eq!(
            direct.gauges_with_prefix("qor."),
            via_json.gauges_with_prefix("qor.")
        );
    }

    #[test]
    fn diff_against_self_is_empty_and_changes_surface() {
        let r = sample();
        let a = Analysis::from_report(&r).expect("analyzes");
        for rel in [0.0, 0.1, 10.0] {
            let d = TraceDiff::between(
                &a,
                &a,
                &DiffOptions {
                    time_rel_tol: rel,
                    time_abs_tol_s: 0.0,
                    metric_rel_tol: rel,
                },
            );
            assert!(d.is_empty(), "tol {rel}: {:?}", d.entries);
        }
        // A +50% gauge bump is a metric regression at exact tolerance…
        let mut bumped = r.clone();
        bumped.metrics[0].value = MetricValue::Gauge(1234.5 * 1.5);
        let b = Analysis::from_report(&bumped).expect("analyzes");
        let d = TraceDiff::between(&a, &b, &DiffOptions::default());
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].kind, DiffKind::Metric);
        assert_eq!(d.entries[0].name, "qor.hpwl");
        assert!(d.entries[0].is_regression());
        // …and absorbed by a generous relative tolerance.
        let d = TraceDiff::between(
            &a,
            &b,
            &DiffOptions {
                metric_rel_tol: 0.6,
                ..DiffOptions::default()
            },
        );
        assert!(d.is_empty());
    }

    #[test]
    fn min_of_n_diff_ignores_one_slow_repetition() {
        let fast = sample();
        let mut slow = sample();
        // The same run with every span stretched 3×: min-of-N on the base
        // side should discard it entirely.
        for s in &mut slow.spans {
            s.end_ns = s.start_ns + (s.end_ns - s.start_ns) * 3;
        }
        let a_fast = Analysis::from_report(&fast).expect("analyzes");
        let a_slow = Analysis::from_report(&slow).expect("analyzes");
        let d = TraceDiff::between_many(
            &[&a_fast, &a_slow],
            &[&a_fast],
            &DiffOptions {
                time_rel_tol: 0.0,
                time_abs_tol_s: 0.0,
                metric_rel_tol: 0.0,
            },
        );
        assert!(d.is_empty(), "{:?}", d.entries);
    }

    #[test]
    fn frames_are_sanitized() {
        assert_eq!(sanitize_frame("a;b\nc"), "a:b c");
    }
}
