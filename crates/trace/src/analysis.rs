//! Trace analytics: self-time attribution, critical-path extraction,
//! flamegraph export and run-over-run report diffing.
//!
//! [`Analysis`] is the common entry point. It is built either from a live
//! [`TraceReport`] ([`Analysis::from_report`]) or from a previously
//! exported structured-JSON document ([`Analysis::from_json`]), so the
//! same analytics run in-process (the `tracetool gate` fresh run) and
//! offline on a committed artifact (`tracetool summarize/diff` on
//! `TRACE_report.json`).
//!
//! # Self-time
//!
//! A span's **self-time** is its wall time minus the wall time of its
//! *direct* children: `self(s) = wall(s) − Σ wall(child)`. With parallel
//! children (cross-thread adoption via
//! [`run_with_parent`](crate::run_with_parent)) the children's wall
//! times can overlap and sum to more than the parent's, so self-time can
//! be **negative** — that is a signal (the span fanned work out), not an
//! error. The definition telescopes: summed over every span of a tree,
//! self-time equals the root's wall time *exactly* (in integer
//! nanoseconds), which is what makes per-name aggregation a partition of
//! the run and lets `tracetool gate` reason about shares.
//!
//! # Critical path
//!
//! The critical path is extracted by walking from the root and
//! repeatedly descending into the child with the largest wall time (ties
//! broken by earliest start, then insertion order). Parent/child links
//! are id-based, so a child adopted onto another thread by the
//! `cp-parallel` pool is followed like any other — the path freely
//! crosses threads.
//!
//! # Diffing and the noise model
//!
//! [`TraceDiff`] compares two runs span-name-by-span-name and
//! metric-by-metric. Runtime comparisons use a relative-tolerance noise
//! model (`|new − base| > max(abs_tol, rel_tol·|base|)` counts as a
//! change) because wall-clock jitters; metric comparisons default to
//! exact because the flow's outputs are bitwise deterministic.
//! [`TraceDiff::between_many`] is **min-of-N aware**: given several
//! repetitions of each run it compares the per-name *minimum* times, the
//! same noise-rejection the bench bins use.

use crate::json::Json;
use crate::report::{MetricValue, TraceReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Analysis

/// One span, resolved into tree form.
#[derive(Debug, Clone)]
struct ASpan {
    name: String,
    thread: u32,
    start_ns: u64,
    dur_ns: u64,
    children: Vec<usize>,
    /// `dur_ns − Σ child dur_ns`; negative when children overlapped
    /// (parallel fan-out).
    self_ns: i64,
}

/// A scalar-valued view of one metric (histograms expose count and sum).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricReading {
    /// Metric name.
    pub name: String,
    /// Slot for per-instance metrics.
    pub slot: Option<u32>,
    /// The reading.
    pub value: MetricReadingValue,
}

/// The value kinds a [`MetricReading`] can carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricReadingValue {
    /// Monotonic counter.
    Counter(f64),
    /// Latest-value gauge.
    Gauge(f64),
    /// Histogram, reduced to observation count and sum.
    Histogram {
        /// Observations recorded.
        count: f64,
        /// Sum of observations.
        sum: f64,
    },
}

/// Aggregated per-name timing (the rows of a self-time profile).
#[derive(Debug, Clone, PartialEq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Spans with this name.
    pub count: u64,
    /// Total wall seconds (nested same-name spans count repeatedly).
    pub wall_s: f64,
    /// Total self seconds (a partition of the root's wall time).
    pub self_s: f64,
}

/// One step of the critical path, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// Thread ordinal the span ran on.
    pub thread: u32,
    /// Start relative to the trace epoch, seconds.
    pub start_s: f64,
    /// Wall seconds.
    pub wall_s: f64,
    /// Self seconds (wall minus direct children).
    pub self_s: f64,
}

/// An analyzed span tree plus the run's metric readings.
#[derive(Debug, Clone)]
pub struct Analysis {
    spans: Vec<ASpan>,
    root: usize,
    metrics: Vec<MetricReading>,
    /// Events lost to the collector's buffer cap.
    pub dropped_events: u64,
}

impl Analysis {
    /// Builds the analysis from a live report.
    ///
    /// # Errors
    ///
    /// When the report's root span is missing from `spans`.
    pub fn from_report(report: &TraceReport) -> Result<Self, String> {
        let raw: Vec<(u64, u64, String, u32, u64, u64)> = report
            .spans
            .iter()
            .map(|s| {
                (
                    s.id,
                    s.parent,
                    s.name.to_string(),
                    s.thread,
                    s.start_ns,
                    s.end_ns.saturating_sub(s.start_ns),
                )
            })
            .collect();
        let metrics = report
            .metrics
            .iter()
            .map(|m| MetricReading {
                name: m.name.to_string(),
                slot: m.slot,
                value: match &m.value {
                    MetricValue::Counter(v) => MetricReadingValue::Counter(*v as f64),
                    MetricValue::Gauge(v) => MetricReadingValue::Gauge(*v),
                    MetricValue::Histogram { count, sum, .. } => MetricReadingValue::Histogram {
                        count: *count as f64,
                        sum: *sum,
                    },
                },
            })
            .collect();
        Self::build(raw, report.root, metrics, report.dropped_events)
    }

    /// Builds the analysis from a parsed `TRACE_report.json` document
    /// (the output of [`TraceReport::to_json`]).
    ///
    /// # Errors
    ///
    /// When required fields are missing or the root span is absent.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let root_id =
            doc.get("root")
                .and_then(Json::as_f64)
                .ok_or_else(|| "report has no numeric \"root\"".to_string())? as u64;
        let spans = doc
            .get("spans")
            .and_then(Json::as_array)
            .ok_or_else(|| "report has no \"spans\" array".to_string())?;
        let mut raw = Vec::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            let field = |k: &str| {
                s.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("span {i} has no numeric \"{k}\""))
            };
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("span {i} has no string \"name\""))?;
            raw.push((
                field("id")? as u64,
                field("parent")? as u64,
                name.to_string(),
                field("thread")? as u32,
                (field("start_us")? * 1e3).round() as u64,
                (field("dur_us")? * 1e3).round() as u64,
            ));
        }
        let mut metrics = Vec::new();
        if let Some(ms) = doc.get("metrics").and_then(Json::as_array) {
            for m in ms {
                if let Some(r) = metric_from_json(m) {
                    metrics.push(r);
                }
            }
        }
        let dropped = doc
            .get("dropped_events")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        Self::build(raw, root_id, metrics, dropped)
    }

    /// `raw`: `(id, parent, name, thread, start_ns, dur_ns)` per span.
    fn build(
        raw: Vec<(u64, u64, String, u32, u64, u64)>,
        root_id: u64,
        metrics: Vec<MetricReading>,
        dropped_events: u64,
    ) -> Result<Self, String> {
        let index_of: BTreeMap<u64, usize> =
            raw.iter().enumerate().map(|(i, r)| (r.0, i)).collect();
        let root = *index_of
            .get(&root_id)
            .ok_or_else(|| format!("root span {root_id} not present in the report"))?;
        let mut spans: Vec<ASpan> = raw
            .iter()
            .map(|(_, _, name, thread, start_ns, dur_ns)| ASpan {
                name: name.clone(),
                thread: *thread,
                start_ns: *start_ns,
                dur_ns: *dur_ns,
                children: Vec::new(),
                self_ns: *dur_ns as i64,
            })
            .collect();
        for (i, (id, parent, ..)) in raw.iter().enumerate() {
            if *id == root_id {
                continue;
            }
            // Orphans (parent pruned from the capture) attach to the root
            // so the tree stays connected and self-time still telescopes.
            let p = index_of.get(parent).copied().unwrap_or(root);
            spans[p].children.push(i);
            spans[p].self_ns -= raw[i].5 as i64;
        }
        // Children in start order (stable for equal starts: insertion
        // order above follows the report's span order).
        let keys: Vec<(u64, u64)> = raw.iter().map(|r| (r.4, r.0)).collect();
        for s in &mut spans {
            s.children.sort_by_key(|&c| keys[c]);
        }
        Ok(Self {
            spans,
            root,
            metrics,
            dropped_events,
        })
    }

    /// Number of spans analyzed.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// The root span's name.
    pub fn root_name(&self) -> &str {
        &self.spans[self.root].name
    }

    /// The root span's wall time, seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.spans[self.root].dur_ns as f64 * 1e-9
    }

    /// The metric readings captured with the trace.
    pub fn metrics(&self) -> &[MetricReading] {
        &self.metrics
    }

    /// Gauge readings whose name starts with `prefix`, in name order —
    /// how `tracetool gate` pulls the `qor.*` snapshot out of a report.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .metrics
            .iter()
            .filter(|m| m.name.starts_with(prefix))
            .filter_map(|m| match m.value {
                MetricReadingValue::Gauge(v) => Some((m.name.clone(), v)),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total self-time across every span, seconds. Telescopes to
    /// [`Self::duration_seconds`] exactly (integer-nanosecond identity)
    /// when every span descends from the root.
    pub fn total_self_seconds(&self) -> f64 {
        self.spans.iter().map(|s| s.self_ns).sum::<i64>() as f64 * 1e-9
    }

    /// Per-name aggregation, sorted by descending self-time (ties by
    /// name). The `self_s` column is a partition of the root wall time.
    pub fn self_time_by_name(&self) -> Vec<NameAgg> {
        let mut by_name: BTreeMap<&str, (u64, i64, i64)> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(&s.name).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_ns as i64;
            e.2 += s.self_ns;
        }
        let mut rows: Vec<NameAgg> = by_name
            .into_iter()
            .map(|(name, (count, wall, selft))| NameAgg {
                name: name.to_string(),
                count,
                wall_s: wall as f64 * 1e-9,
                self_s: selft as f64 * 1e-9,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_s
                .partial_cmp(&a.self_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// The index of the heaviest child of `i` (largest wall, ties to the
    /// earliest start, then lowest index), when `i` has children.
    fn heaviest_child(&self, i: usize) -> Option<usize> {
        self.spans[i].children.iter().copied().max_by(|&a, &b| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            sa.dur_ns
                .cmp(&sb.dur_ns)
                .then_with(|| sb.start_ns.cmp(&sa.start_ns))
                .then_with(|| b.cmp(&a))
        })
    }

    /// The critical path: root first, each step the heaviest child of the
    /// previous one. Crosses threads wherever cross-thread adoption put a
    /// child on another worker.
    pub fn critical_path(&self) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut cur = self.root;
        let mut depth = 0;
        loop {
            let s = &self.spans[cur];
            path.push(PathStep {
                name: s.name.clone(),
                depth,
                thread: s.thread,
                start_s: s.start_ns as f64 * 1e-9,
                wall_s: s.dur_ns as f64 * 1e-9,
                self_s: s.self_ns as f64 * 1e-9,
            });
            match self.heaviest_child(cur) {
                Some(c) => {
                    cur = c;
                    depth += 1;
                }
                None => return path,
            }
        }
    }

    /// Collapsed-stack ("folded") flamegraph export, loadable by inferno
    /// and speedscope: one line per distinct stack,
    /// `root;child;…;leaf <self_ns>`. Counts are self-time in integer
    /// nanoseconds, clamped at zero (a parallel fan-out span contributes
    /// its children's stacks, not a negative count); zero-count stacks
    /// are omitted. Sibling spans with the same name fold into one line.
    pub fn folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        let mut frames: Vec<String> = Vec::new();
        self.fold_into(self.root, &mut frames, &mut stacks);
        let mut out = String::new();
        for (stack, count) in stacks {
            if count > 0 {
                let _ = writeln!(out, "{stack} {count}");
            }
        }
        out
    }

    fn fold_into(&self, i: usize, frames: &mut Vec<String>, stacks: &mut BTreeMap<String, u64>) {
        let s = &self.spans[i];
        frames.push(sanitize_frame(&s.name));
        let stack = frames.join(";");
        *stacks.entry(stack).or_insert(0) += s.self_ns.max(0) as u64;
        for &c in &s.children {
            self.fold_into(c, frames, stacks);
        }
        frames.pop();
    }

    /// `(name, subtree self-time seconds)` for each direct child of the
    /// root, in start order. By the telescoping identity each subtree's
    /// self-time equals the child span's wall time, so these reconcile
    /// with [`TraceReport::stage_seconds`] to nanosecond precision.
    pub fn stage_self_seconds(&self) -> Vec<(String, f64)> {
        self.spans[self.root]
            .children
            .iter()
            .map(|&c| {
                (
                    self.spans[c].name.clone(),
                    self.subtree_self_ns(c) as f64 * 1e-9,
                )
            })
            .collect()
    }

    fn subtree_self_ns(&self, i: usize) -> i64 {
        let mut total = self.spans[i].self_ns;
        for &c in &self.spans[i].children {
            total += self.subtree_self_ns(c);
        }
        total
    }
}

fn metric_from_json(m: &Json) -> Option<MetricReading> {
    let name = m.get("name").and_then(Json::as_str)?.to_string();
    let slot = m.get("slot").and_then(Json::as_f64).map(|s| s as u32);
    let value = match m.get("kind").and_then(Json::as_str)? {
        "counter" => MetricReadingValue::Counter(m.get("value").and_then(Json::as_f64)?),
        "gauge" => MetricReadingValue::Gauge(m.get("value").and_then(Json::as_f64)?),
        "histogram" => MetricReadingValue::Histogram {
            count: m.get("count").and_then(Json::as_f64)?,
            sum: m.get("sum").and_then(Json::as_f64)?,
        },
        _ => return None,
    };
    Some(MetricReading { name, slot, value })
}

/// Folded-format frames may not contain the stack separator or line
/// breaks; spaces are fine (parsers split the count off the *last*
/// space).
fn sanitize_frame(name: &str) -> String {
    name.replace(';', ":").replace(['\n', '\r'], " ")
}

// ---------------------------------------------------------------------------
// Diff

/// Tolerances for [`TraceDiff`]: a change is *significant* when
/// `|new − base| > max(abs, rel·|base|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative tolerance on wall/self times (scheduling noise).
    pub time_rel_tol: f64,
    /// Absolute floor on time deltas, seconds (sub-floor spans jitter
    /// wildly in relative terms but never matter).
    pub time_abs_tol_s: f64,
    /// Relative tolerance on metric values; 0 = exact, the right default
    /// for a bitwise-deterministic flow.
    pub metric_rel_tol: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            time_rel_tol: 0.10,
            time_abs_tol_s: 1e-4,
            metric_rel_tol: 0.0,
        }
    }
}

/// What a [`DiffEntry`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Per-name self-time, seconds.
    SelfTime,
    /// Per-name total wall time, seconds.
    WallTime,
    /// Per-name span count.
    SpanCount,
    /// A metric value (counter/gauge value, histogram sum or count).
    Metric,
}

/// One significant difference between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// What changed.
    pub kind: DiffKind,
    /// Span name or metric name (histograms add `/count`).
    pub name: String,
    /// Baseline value (NaN when absent from the baseline).
    pub base: f64,
    /// New value (NaN when absent from the new run).
    pub new: f64,
}

impl DiffEntry {
    /// `new − base`.
    pub fn delta(&self) -> f64 {
        self.new - self.base
    }

    /// `new / base` (NaN when the base is 0 or either side is absent).
    pub fn ratio(&self) -> f64 {
        if self.base == 0.0 {
            f64::NAN
        } else {
            self.new / self.base
        }
    }

    /// `true` when the change is in the bad direction (more time, or any
    /// metric/count change at all).
    pub fn is_regression(&self) -> bool {
        match self.kind {
            DiffKind::SelfTime | DiffKind::WallTime => {
                self.new.is_nan() || self.base.is_nan() || self.new > self.base
            }
            DiffKind::SpanCount | DiffKind::Metric => true,
        }
    }
}

/// The significant differences between two runs (empty = within noise).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDiff {
    /// Significant changes, span rows first (by name), then metrics.
    pub entries: Vec<DiffEntry>,
}

/// Per-name `(count, wall_s, self_s)` after min-of-N reduction.
type TimeRows = BTreeMap<String, (u64, f64, f64)>;

impl TraceDiff {
    /// Diffs one baseline run against one new run.
    pub fn between(base: &Analysis, new: &Analysis, opts: &DiffOptions) -> Self {
        Self::between_many(&[base], &[new], opts)
    }

    /// Min-of-N diff: each side may supply several repetitions of the
    /// same configuration; per-name times are reduced to their minimum
    /// across repetitions before comparing (the bench bins' noise
    /// rejection). Metrics are taken from the first repetition of each
    /// side — a deterministic flow reproduces them exactly.
    ///
    /// Empty slices produce an empty diff.
    pub fn between_many(base: &[&Analysis], new: &[&Analysis], opts: &DiffOptions) -> Self {
        let (Some(b0), Some(n0)) = (base.first(), new.first()) else {
            return Self::default();
        };
        let mut entries = Vec::new();
        let b_rows = min_rows(base);
        let n_rows = min_rows(new);
        let mut names: Vec<&String> = b_rows.keys().chain(n_rows.keys()).collect();
        names.sort();
        names.dedup();
        for name in names {
            let b = b_rows.get(name.as_str());
            let n = n_rows.get(name.as_str());
            let (bc, bw, bs) = b.copied().unwrap_or((0, 0.0, 0.0));
            let (nc, nw, ns) = n.copied().unwrap_or((0, 0.0, 0.0));
            if bc != nc {
                entries.push(DiffEntry {
                    kind: DiffKind::SpanCount,
                    name: name.clone(),
                    base: bc as f64,
                    new: nc as f64,
                });
            }
            for (kind, bv, nv) in [(DiffKind::WallTime, bw, nw), (DiffKind::SelfTime, bs, ns)] {
                if significant(bv, nv, opts.time_rel_tol, opts.time_abs_tol_s) {
                    entries.push(DiffEntry {
                        kind,
                        name: name.clone(),
                        base: bv,
                        new: nv,
                    });
                }
            }
        }
        entries.extend(diff_metrics(b0, n0, opts));
        Self { entries }
    }

    /// `true` when nothing changed beyond the tolerances.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries that changed in the bad direction.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.is_regression()).collect()
    }
}

pub(crate) fn significant(base: f64, new: f64, rel: f64, abs: f64) -> bool {
    if base.is_nan() || new.is_nan() {
        return true;
    }
    (new - base).abs() > abs.max(rel * base.abs())
}

fn min_rows(side: &[&Analysis]) -> TimeRows {
    // Per name, keep the whole (count, wall, self) row from the
    // repetition with the smallest wall time. Self-time must ride along
    // with its wall rather than being minimized independently: it can be
    // legitimately negative under parallel fan-out, where a slower rep
    // would win an independent min and poison the baseline.
    let mut rows: TimeRows = BTreeMap::new();
    for (rep, a) in side.iter().enumerate() {
        for agg in a.self_time_by_name() {
            let e = rows
                .entry(agg.name)
                .or_insert((agg.count, agg.wall_s, agg.self_s));
            if rep > 0 && agg.wall_s < e.1 {
                *e = (agg.count, agg.wall_s, agg.self_s);
            }
        }
    }
    rows
}

/// Scalar views of one side's metrics, keyed for matching.
fn metric_scalars(a: &Analysis) -> BTreeMap<(String, Option<u32>), f64> {
    let mut out = BTreeMap::new();
    for m in a.metrics() {
        match m.value {
            MetricReadingValue::Counter(v) | MetricReadingValue::Gauge(v) => {
                out.insert((m.name.clone(), m.slot), v);
            }
            MetricReadingValue::Histogram { count, sum } => {
                out.insert((m.name.clone(), m.slot), sum);
                out.insert((format!("{}/count", m.name), m.slot), count);
            }
        }
    }
    out
}

fn diff_metrics(base: &Analysis, new: &Analysis, opts: &DiffOptions) -> Vec<DiffEntry> {
    let b = metric_scalars(base);
    let n = metric_scalars(new);
    let mut keys: Vec<&(String, Option<u32>)> = b.keys().chain(n.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut out = Vec::new();
    for key in keys {
        let bv = b.get(key).copied().unwrap_or(f64::NAN);
        let nv = n.get(key).copied().unwrap_or(f64::NAN);
        if significant(bv, nv, opts.metric_rel_tol, 0.0) {
            let name = match key.1 {
                Some(slot) => format!("{}[{slot}]", key.0),
                None => key.0.clone(),
            };
            out.push(DiffEntry {
                kind: DiffKind::Metric,
                name,
                base: bv,
                new: nv,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Convergence doctor

/// What a [`Verdict`] diagnoses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// The convergence series stopped moving while the run kept
    /// iterating: wasted work, nothing converging.
    Stall,
    /// The objective bounces between two regimes instead of descending.
    Oscillation,
    /// The objective blew up (or the placer had to revert to a
    /// snapshot).
    Divergence,
    /// The same bins stay overloaded across most density frames — a
    /// spatial bottleneck spreading never clears.
    HotspotPersistence,
    /// Spreading keeps displacing cells as hard late in the run as it
    /// did at the start: the lower bound and the upper bound fight.
    DisplacementConflict,
    /// A base-vs-new comparison found a regression.
    Regression,
}

impl VerdictKind {
    /// Stable machine-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictKind::Stall => "stall",
            VerdictKind::Oscillation => "oscillation",
            VerdictKind::Divergence => "divergence",
            VerdictKind::HotspotPersistence => "hotspot-persistence",
            VerdictKind::DisplacementConflict => "displacement-conflict",
            VerdictKind::Regression => "regression",
        }
    }
}

/// How bad a verdict is. Ordered: `Info < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing, not actionable on its own.
    Info,
    /// Quality or efficiency is likely suffering.
    Warning,
    /// The run is broken or wasting most of its work.
    Critical,
}

impl Severity {
    /// Stable machine-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One structured diagnosis: what went wrong, where, how badly, the
/// numbers that prove it, and what to try.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// What was diagnosed.
    pub kind: VerdictKind,
    /// The stage (direct child of the flow root) the anomaly lives in.
    pub stage: String,
    /// How bad it is.
    pub severity: Severity,
    /// The numbers behind the diagnosis.
    pub evidence: String,
    /// What to try next.
    pub suggestion: String,
}

/// One convergence-series group, resolved to its stage: the rows of a
/// `(name, emitting span)` series with the span mapped to the stage it
/// ran under.
#[derive(Debug, Clone)]
pub struct SeriesGroup {
    /// Series name (e.g. `place.outer`).
    pub name: String,
    /// Stage the emitting span belongs to.
    pub stage: String,
    /// One map per iteration, `"i"` plus the recorded columns.
    pub rows: Vec<BTreeMap<String, f64>>,
}

impl SeriesGroup {
    /// One column across the rows (missing cells are skipped).
    fn column(&self, key: &str) -> Vec<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.get(key).copied())
            .collect()
    }
}

/// Maps every span id to the name of the stage (direct child of the
/// root, with `flow.*` wrappers transparent) whose subtree contains it.
fn stage_of_spans(spans: &[(u64, u64, String)], root: u64) -> BTreeMap<u64, String> {
    let by_id: BTreeMap<u64, (u64, &str)> = spans
        .iter()
        .map(|(id, parent, name)| (*id, (*parent, name.as_str())))
        .collect();
    let mut out = BTreeMap::new();
    for &(id, _, _) in spans {
        let mut cur = id;
        let mut stage: Option<&str> = None;
        // Climb to the root; the last non-wrapper node below it (or
        // below a `flow.*` wrapper that is itself below the root) is
        // the stage.
        for _ in 0..spans.len() {
            let Some(&(parent, name)) = by_id.get(&cur) else {
                break;
            };
            if cur == root {
                break;
            }
            let parent_is_top = parent == root
                || by_id
                    .get(&parent)
                    .is_some_and(|&(gp, pname)| gp == root && pname.starts_with("flow."));
            if parent_is_top && !name.starts_with("flow.") {
                stage = Some(name);
                break;
            }
            cur = parent;
        }
        if let Some(s) = stage {
            out.insert(id, s.to_string());
        }
    }
    out
}

/// The convergence doctor: detectors over convergence series and field
/// frames, emitting ranked [`Verdict`]s. All thresholds are public so a
/// caller can tighten or relax the diagnosis.
#[derive(Debug, Clone)]
pub struct Doctor {
    /// The convergence series to analyze (default `place.outer`).
    pub series_name: String,
    /// Minimum rows before series detectors speak (default 6).
    pub min_rows: usize,
    /// Relative tolerance under which consecutive values count as flat
    /// (default `1e-9` — a healthy run moves at least in the last few
    /// ulps every iteration).
    pub flat_rel_tol: f64,
    /// Minimum relative amplitude for an oscillation swing (default 1%).
    pub oscillation_amplitude: f64,
    /// Final-over-best ratio that counts as divergence (default 2.0).
    pub divergence_factor: f64,
    /// A bin is *hot* in a frame when its value is at least this
    /// fraction of the frame maximum (default 0.5).
    pub hot_threshold: f64,
    /// A hot bin is *persistent* when hot in at least this fraction of
    /// the frames (default 0.8).
    pub hot_persistence: f64,
    /// Minimum frames in a sequence before frame detectors speak
    /// (default 4).
    pub min_frames: usize,
}

impl Default for Doctor {
    fn default() -> Self {
        Self {
            series_name: "place.outer".to_string(),
            min_rows: 6,
            flat_rel_tol: 1e-9,
            oscillation_amplitude: 0.01,
            divergence_factor: 2.0,
            hot_threshold: 0.5,
            hot_persistence: 0.8,
            min_frames: 4,
        }
    }
}

impl Doctor {
    /// Diagnoses a live report plus (optionally empty) decoded frames.
    pub fn diagnose_report(
        &self,
        report: &TraceReport,
        frames: &[crate::fields::DecodedFrame],
    ) -> Vec<Verdict> {
        let spans: Vec<(u64, u64, String)> = report
            .spans
            .iter()
            .map(|s| (s.id, s.parent, s.name.to_string()))
            .collect();
        let stages = stage_of_spans(&spans, report.root);
        let unknown = || "unknown".to_string();
        let mut groups: Vec<((&str, u64), SeriesGroup)> = Vec::new();
        for r in &report.series {
            let key = (r.name, r.span);
            let mut row: BTreeMap<String, f64> = BTreeMap::new();
            row.insert("i".to_string(), r.iter as f64);
            for &(k, v) in &r.values {
                row.insert(k.to_string(), v);
            }
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.rows.push(row),
                None => groups.push((
                    key,
                    SeriesGroup {
                        name: r.name.to_string(),
                        stage: stages.get(&r.span).cloned().unwrap_or_else(unknown),
                        rows: vec![row],
                    },
                )),
            }
        }
        let groups: Vec<SeriesGroup> = groups.into_iter().map(|(_, g)| g).collect();
        let reverts: Vec<String> = report
            .instants
            .iter()
            .filter(|i| i.name == "place.revert")
            .map(|i| stages.get(&i.span).cloned().unwrap_or_else(unknown))
            .collect();
        self.diagnose(&groups, &reverts, frames)
    }

    /// Diagnoses a structured-JSON report document (the
    /// `TRACE_report.json` format) plus decoded frames.
    ///
    /// # Errors
    ///
    /// Returns a message when the document lacks the spans/root shape.
    pub fn diagnose_json(
        &self,
        doc: &Json,
        frames: &[crate::fields::DecodedFrame],
    ) -> Result<Vec<Verdict>, String> {
        let root = doc
            .get("root")
            .and_then(Json::as_f64)
            .ok_or_else(|| "report has no numeric \"root\"".to_string())? as u64;
        let mut spans = Vec::new();
        for s in doc
            .get("spans")
            .and_then(Json::as_array)
            .ok_or_else(|| "report has no \"spans\" array".to_string())?
        {
            let id = s.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let parent = s.get("parent").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let name = s.get("name").and_then(Json::as_str).unwrap_or("");
            spans.push((id, parent, name.to_string()));
        }
        let stages = stage_of_spans(&spans, root);
        let unknown = || "unknown".to_string();
        let mut groups = Vec::new();
        if let Some(series) = doc.get("series").and_then(Json::as_array) {
            for g in series {
                let name = g.get("name").and_then(Json::as_str).unwrap_or("");
                let span = g.get("span").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let mut rows = Vec::new();
                if let Some(rs) = g.get("rows").and_then(Json::as_array) {
                    for r in rs {
                        if let Json::Obj(map) = r {
                            let row: BTreeMap<String, f64> = map
                                .iter()
                                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                                .collect();
                            rows.push(row);
                        }
                    }
                }
                groups.push(SeriesGroup {
                    name: name.to_string(),
                    stage: stages.get(&span).cloned().unwrap_or_else(unknown),
                    rows,
                });
            }
        }
        let mut reverts = Vec::new();
        if let Some(instants) = doc.get("instants").and_then(Json::as_array) {
            for i in instants {
                if i.get("name").and_then(Json::as_str) == Some("place.revert") {
                    let span = i.get("span").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                    reverts.push(stages.get(&span).cloned().unwrap_or_else(unknown));
                }
            }
        }
        Ok(self.diagnose(&groups, &reverts, frames))
    }

    /// Runs every detector over pre-extracted series groups, revert
    /// stages and decoded frames. Verdicts come back most severe first.
    pub fn diagnose(
        &self,
        groups: &[SeriesGroup],
        revert_stages: &[String],
        frames: &[crate::fields::DecodedFrame],
    ) -> Vec<Verdict> {
        let mut out = Vec::new();
        for g in groups.iter().filter(|g| g.name == self.series_name) {
            self.check_stall(g, &mut out);
            self.check_oscillation(g, &mut out);
            self.check_divergence(g, revert_stages, &mut out);
        }
        self.check_hotspots(frames, &mut out);
        self.check_displacement(frames, &mut out);
        out.sort_by_key(|v| std::cmp::Reverse(v.severity));
        out
    }

    fn check_stall(&self, g: &SeriesGroup, out: &mut Vec<Verdict>) {
        let hpwl = g.column("hpwl");
        let overflow = g.column("overflow");
        let n = hpwl.len();
        if n < self.min_rows || overflow.len() != n {
            return;
        }
        let tail = (n / 2).max(4).min(n - 1);
        let flat = |v: &[f64]| {
            v[n - 1 - tail..]
                .windows(2)
                .all(|w| (w[1] - w[0]).abs() <= self.flat_rel_tol * w[0].abs())
        };
        if flat(&hpwl) && flat(&overflow) {
            out.push(Verdict {
                kind: VerdictKind::Stall,
                stage: g.stage.clone(),
                severity: Severity::Critical,
                evidence: format!(
                    "hpwl flat at {:.6e} and overflow flat at {:.4} over the last {} of {} iterations (rel change < {:.0e})",
                    hpwl[n - 1],
                    overflow[n - 1],
                    tail,
                    n,
                    self.flat_rel_tol
                ),
                suggestion: "the placer is re-solving an unchanged system; check that spreading \
                             actually perturbs positions (density target, backend) and that \
                             anchors are not frozen"
                    .to_string(),
            });
        }
    }

    fn check_oscillation(&self, g: &SeriesGroup, out: &mut Vec<Verdict>) {
        let hpwl = g.column("hpwl");
        let n = hpwl.len();
        if n < self.min_rows.max(8) {
            return;
        }
        let deltas: Vec<f64> = hpwl.windows(2).map(|w| w[1] - w[0]).collect();
        let mut swings = 0usize;
        let mut pairs = 0usize;
        for w in deltas.windows(2) {
            let amp = self.oscillation_amplitude * hpwl[0].abs();
            if w[0].abs() > amp && w[1].abs() > amp {
                pairs += 1;
                if w[0] * w[1] < 0.0 {
                    swings += 1;
                }
            }
        }
        if pairs >= 4 && swings * 2 > pairs {
            out.push(Verdict {
                kind: VerdictKind::Oscillation,
                stage: g.stage.clone(),
                severity: Severity::Warning,
                evidence: format!(
                    "hpwl direction flips in {swings} of {pairs} significant consecutive steps \
                     (amplitude > {:.1}% of start)",
                    self.oscillation_amplitude * 100.0
                ),
                suggestion: "lower-bound solve and spreading are overshooting each other; \
                             strengthen anchors (higher anchor_base) or reduce per-pass \
                             spreading displacement"
                    .to_string(),
            });
        }
    }

    fn check_divergence(&self, g: &SeriesGroup, revert_stages: &[String], out: &mut Vec<Verdict>) {
        let hpwl = g.column("hpwl");
        let n = hpwl.len();
        if n < 2 {
            return;
        }
        let last = hpwl[n - 1];
        let best = hpwl.iter().copied().fold(f64::INFINITY, f64::min);
        let reverted = revert_stages.contains(&g.stage);
        if !last.is_finite()
            || (best.is_finite() && best > 0.0 && last > self.divergence_factor * best)
        {
            out.push(Verdict {
                kind: VerdictKind::Divergence,
                stage: g.stage.clone(),
                severity: Severity::Critical,
                evidence: format!(
                    "final hpwl {last:.6e} vs best {best:.6e} (factor {:.2} allowed)",
                    self.divergence_factor
                ),
                suggestion: "the solve walked away from its best snapshot; enable \
                             revert_if_diverge or lower the anchor ramp"
                    .to_string(),
            });
        } else if reverted {
            out.push(Verdict {
                kind: VerdictKind::Divergence,
                stage: g.stage.clone(),
                severity: Severity::Warning,
                evidence: format!(
                    "place.revert fired in this stage; final hpwl {last:.6e} is the restored \
                     best snapshot"
                ),
                suggestion: "the run recovered by reverting — results are usable but \
                             iterations were wasted; check the divergence_factor and anchor \
                             settings"
                    .to_string(),
            });
        }
    }

    fn frame_sequences<'f>(
        frames: &'f [crate::fields::DecodedFrame],
        name: &str,
    ) -> Vec<(String, Vec<&'f crate::fields::DecodedFrame>)> {
        let mut seqs: Vec<(String, Vec<&crate::fields::DecodedFrame>)> = Vec::new();
        for f in frames.iter().filter(|f| f.name == name) {
            match seqs.iter_mut().find(|(stage, _)| *stage == f.stage) {
                Some((_, v)) => v.push(f),
                None => seqs.push((f.stage.clone(), vec![f])),
            }
        }
        seqs
    }

    fn check_hotspots(&self, frames: &[crate::fields::DecodedFrame], out: &mut Vec<Verdict>) {
        for (stage, seq) in Self::frame_sequences(frames, "place.density_overflow") {
            if seq.len() < self.min_frames {
                continue;
            }
            let n = seq[0].values.len();
            if seq.iter().any(|f| f.values.len() != n) || n == 0 {
                continue;
            }
            let mut hot_counts = vec![0usize; n];
            for f in &seq {
                let max = f.values.iter().copied().fold(0.0f32, f32::max);
                if max <= 0.0 {
                    continue;
                }
                for (c, &v) in hot_counts.iter_mut().zip(f.values.iter()) {
                    if v >= self.hot_threshold as f32 * max && v > 0.0 {
                        *c += 1;
                    }
                }
            }
            let need = (self.hot_persistence * seq.len() as f64).ceil() as usize;
            let last = seq[seq.len() - 1];
            let final_max = last.values.iter().copied().fold(0.0f32, f32::max);
            let worst = hot_counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= need)
                .max_by_key(|&(i, &c)| (c, last.values[i].to_bits()));
            if let Some((bin, &count)) = worst {
                if final_max > 0.0 {
                    let persistent = hot_counts.iter().filter(|&&c| c >= need).count();
                    let (bx, by) = (bin % last.nx.max(1), bin / last.nx.max(1));
                    out.push(Verdict {
                        kind: VerdictKind::HotspotPersistence,
                        stage,
                        severity: Severity::Warning,
                        evidence: format!(
                            "{persistent} bin(s) stay overloaded in >= {count}/{} density frames; \
                             worst at bin ({bx}, {by}) of {}x{}, final overflow {:.4}",
                            seq.len(),
                            last.nx,
                            last.ny,
                            last.values[bin]
                        ),
                        suggestion: "spreading never clears this region — look for blockages, \
                                     region constraints or oversized macros there, or lower the \
                                     density target"
                            .to_string(),
                    });
                }
            }
        }
    }

    fn check_displacement(&self, frames: &[crate::fields::DecodedFrame], out: &mut Vec<Verdict>) {
        for (stage, seq) in Self::frame_sequences(frames, "place.displacement") {
            if seq.len() < self.min_frames.max(6) {
                continue;
            }
            let totals: Vec<f64> = seq
                .iter()
                .map(|f| f.values.iter().map(|&v| f64::from(v)).sum())
                .collect();
            let q = totals.len().div_ceil(4);
            let early: f64 = totals[..q].iter().sum::<f64>() / q as f64;
            let late: f64 = totals[totals.len() - q..].iter().sum::<f64>() / q as f64;
            if early > 0.0 && late > 0.75 * early {
                out.push(Verdict {
                    kind: VerdictKind::DisplacementConflict,
                    stage,
                    severity: Severity::Warning,
                    evidence: format!(
                        "spreading displacement is not decaying: last-quarter mean {late:.4e} \
                         vs first-quarter {early:.4e} over {} frames",
                        totals.len()
                    ),
                    suggestion: "the lower bound and the spreader keep fighting; raise the \
                                 anchor ramp (anchor_base) so late iterations settle, or relax \
                                 the density target"
                        .to_string(),
                });
            }
        }
    }
}

/// Compares two runs and localizes any regression to a stage *and* — when
/// both sides captured fields — a region. Returns [`VerdictKind::Regression`]
/// verdicts, worst first; empty means the runs are equivalent under `opts`.
pub fn compare_runs(
    base: &Analysis,
    new: &Analysis,
    base_frames: &[crate::fields::DecodedFrame],
    new_frames: &[crate::fields::DecodedFrame],
    opts: &DiffOptions,
) -> Vec<Verdict> {
    let diff = TraceDiff::between(base, new, opts);
    let mut out = Vec::new();
    // Stage attribution: the stage whose self-time grew the most.
    let base_stages: BTreeMap<String, f64> = base.stage_self_seconds().into_iter().collect();
    let worst_stage = new
        .stage_self_seconds()
        .into_iter()
        .map(|(name, s)| {
            let delta = s - base_stages.get(&name).copied().unwrap_or(0.0);
            (name, delta)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for e in diff.regressions() {
        let stage = match e.kind {
            DiffKind::Metric => worst_stage
                .as_ref()
                .map_or_else(|| "unknown".to_string(), |(n, _)| n.clone()),
            _ => e.name.clone(),
        };
        let severity = if e.ratio() > 2.0 {
            Severity::Critical
        } else {
            Severity::Warning
        };
        out.push(Verdict {
            kind: VerdictKind::Regression,
            stage,
            severity,
            evidence: format!(
                "{:?} {}: {:.6e} -> {:.6e} ({:+.1}%)",
                e.kind,
                e.name,
                e.base,
                e.new,
                (e.ratio() - 1.0) * 100.0
            ),
            suggestion: "bisect the change against this stage; the region verdict (if any) \
                         narrows where to look"
                .to_string(),
        });
    }
    // Region attribution: largest per-bin change between the final
    // frames of every (name, stage) sequence both sides captured.
    let mut region: Option<(f64, String)> = None;
    let mut seen: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    for nf in new_frames.iter().rev() {
        // Walking in reverse, the first frame of each sequence we meet
        // is its final one; earlier frames are skipped.
        if !seen.insert((nf.name.clone(), nf.stage.clone())) {
            continue;
        }
        let Some(bf) = base_frames
            .iter()
            .rev()
            .find(|b| b.name == nf.name && b.stage == nf.stage)
        else {
            continue;
        };
        if bf.nx != nf.nx || bf.ny != nf.ny || bf.values.len() != nf.values.len() {
            continue;
        }
        let worst = nf
            .values
            .iter()
            .zip(bf.values.iter())
            .enumerate()
            .map(|(i, (&n, &b))| (i, (f64::from(n) - f64::from(b)).abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((bin, delta)) = worst {
            let better = match &region {
                Some((d, _)) => delta > *d,
                None => true,
            };
            if delta > 0.0 && better {
                let (bx, by) = (bin % nf.nx.max(1), bin / nf.nx.max(1));
                region = Some((
                    delta,
                    format!(
                        "largest field change in {} [{}] at bin ({bx}, {by}) of {}x{}: \
                         {:.4e} -> {:.4e}",
                        nf.name, nf.stage, nf.nx, nf.ny, bf.values[bin], nf.values[bin]
                    ),
                ));
            }
        }
    }
    if let Some((_, desc)) = region {
        if !out.is_empty() {
            let stage = worst_stage
                .as_ref()
                .map_or_else(|| "unknown".to_string(), |(n, _)| n.clone());
            out.push(Verdict {
                kind: VerdictKind::Regression,
                stage,
                severity: Severity::Info,
                evidence: desc,
                suggestion: "inspect this region first: render the frames \
                             (`tracetool render`) to see the two runs side by side"
                    .to_string(),
            });
        }
    }
    out.sort_by_key(|v| std::cmp::Reverse(v.severity));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MetricSnapshot;
    use crate::SpanRecord;

    /// A tree with a parallel fan-out: root [0, 100ms] → stage a
    /// [0, 60ms] with two overlapping children on other threads
    /// (30ms + 40ms > stage wall − nothing), stage b [60ms, 100ms].
    fn sample() -> TraceReport {
        let span =
            |id, parent, name: &'static str, thread, start_ms: u64, end_ms: u64| SpanRecord {
                id,
                parent,
                name,
                thread,
                start_ns: start_ms * 1_000_000,
                end_ns: end_ms * 1_000_000,
                args: vec![],
            };
        TraceReport {
            root: 1,
            spans: vec![
                span(1, 0, "flow", 0, 0, 100),
                span(2, 1, "stage a", 0, 0, 60),
                span(3, 2, "work", 1, 5, 35),
                span(4, 2, "work", 2, 10, 50),
                span(5, 1, "stage b", 0, 60, 100),
            ],
            instants: vec![],
            series: vec![],
            metrics: vec![
                MetricSnapshot {
                    name: "qor.hpwl",
                    slot: None,
                    value: MetricValue::Gauge(1234.5),
                },
                MetricSnapshot {
                    name: "evals",
                    slot: None,
                    value: MetricValue::Counter(7),
                },
            ],
            dropped_events: 0,
        }
    }

    #[test]
    fn self_time_telescopes_to_root_wall() {
        let a = Analysis::from_report(&sample()).expect("analyzes");
        assert!((a.total_self_seconds() - a.duration_seconds()).abs() < 1e-12);
        // stage a: 60 − (30 + 40) = −10ms of self time (parallel children).
        let rows = a.self_time_by_name();
        let stage_a = rows.iter().find(|r| r.name == "stage a").expect("present");
        assert!((stage_a.self_s - (-0.010)).abs() < 1e-12);
        let work = rows.iter().find(|r| r.name == "work").expect("present");
        assert_eq!(work.count, 2);
        assert!((work.self_s - 0.070).abs() < 1e-12);
    }

    #[test]
    fn critical_path_descends_heaviest_children_across_threads() {
        let a = Analysis::from_report(&sample()).expect("analyzes");
        let path = a.critical_path();
        let names: Vec<&str> = path.iter().map(|p| p.name.as_str()).collect();
        // stage a (60ms) beats stage b (40ms); under it the 40ms child
        // on thread 2 beats the 30ms child on thread 1.
        assert_eq!(names, ["flow", "stage a", "work"]);
        assert_eq!(path[2].thread, 2);
        assert_eq!(path[2].depth, 2);
    }

    #[test]
    fn folded_clamps_negative_self_and_merges_siblings() {
        let a = Analysis::from_report(&sample()).expect("analyzes");
        let folded = a.folded();
        let lines: Vec<&str> = folded.lines().collect();
        // "flow" has zero self and "flow;stage a" negative self → both
        // omitted; the two "work" siblings fold into one stack.
        assert_eq!(
            lines,
            ["flow;stage a;work 70000000", "flow;stage b 40000000"]
        );
    }

    #[test]
    fn stage_self_reconciles_with_stage_walls() {
        let r = sample();
        let a = Analysis::from_report(&r).expect("analyzes");
        let stages = r.stage_seconds();
        let selfs = a.stage_self_seconds();
        assert_eq!(stages.len(), selfs.len());
        for ((sn, sw), (an, aself)) in stages.iter().zip(&selfs) {
            assert_eq!(sn, an);
            assert!((sw - aself).abs() < 1e-9, "{sn}: {sw} vs {aself}");
        }
    }

    #[test]
    fn json_round_trip_preserves_analysis() {
        let r = sample();
        let direct = Analysis::from_report(&r).expect("analyzes");
        let doc = crate::json::parse(&r.to_json()).expect("parses");
        let via_json = Analysis::from_json(&doc).expect("analyzes");
        assert_eq!(direct.span_count(), via_json.span_count());
        assert_eq!(direct.self_time_by_name(), via_json.self_time_by_name());
        assert_eq!(direct.critical_path(), via_json.critical_path());
        assert_eq!(direct.folded(), via_json.folded());
        assert_eq!(
            direct.gauges_with_prefix("qor."),
            via_json.gauges_with_prefix("qor.")
        );
    }

    #[test]
    fn diff_against_self_is_empty_and_changes_surface() {
        let r = sample();
        let a = Analysis::from_report(&r).expect("analyzes");
        for rel in [0.0, 0.1, 10.0] {
            let d = TraceDiff::between(
                &a,
                &a,
                &DiffOptions {
                    time_rel_tol: rel,
                    time_abs_tol_s: 0.0,
                    metric_rel_tol: rel,
                },
            );
            assert!(d.is_empty(), "tol {rel}: {:?}", d.entries);
        }
        // A +50% gauge bump is a metric regression at exact tolerance…
        let mut bumped = r.clone();
        bumped.metrics[0].value = MetricValue::Gauge(1234.5 * 1.5);
        let b = Analysis::from_report(&bumped).expect("analyzes");
        let d = TraceDiff::between(&a, &b, &DiffOptions::default());
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].kind, DiffKind::Metric);
        assert_eq!(d.entries[0].name, "qor.hpwl");
        assert!(d.entries[0].is_regression());
        // …and absorbed by a generous relative tolerance.
        let d = TraceDiff::between(
            &a,
            &b,
            &DiffOptions {
                metric_rel_tol: 0.6,
                ..DiffOptions::default()
            },
        );
        assert!(d.is_empty());
    }

    #[test]
    fn min_of_n_diff_ignores_one_slow_repetition() {
        let fast = sample();
        let mut slow = sample();
        // The same run with every span stretched 3×: min-of-N on the base
        // side should discard it entirely.
        for s in &mut slow.spans {
            s.end_ns = s.start_ns + (s.end_ns - s.start_ns) * 3;
        }
        let a_fast = Analysis::from_report(&fast).expect("analyzes");
        let a_slow = Analysis::from_report(&slow).expect("analyzes");
        let d = TraceDiff::between_many(
            &[&a_fast, &a_slow],
            &[&a_fast],
            &DiffOptions {
                time_rel_tol: 0.0,
                time_abs_tol_s: 0.0,
                metric_rel_tol: 0.0,
            },
        );
        assert!(d.is_empty(), "{:?}", d.entries);
    }

    #[test]
    fn frames_are_sanitized() {
        assert_eq!(sanitize_frame("a;b\nc"), "a:b c");
    }

    // -- doctor --

    use crate::fields::DecodedFrame;
    use crate::SeriesRow;

    /// A flow-shaped report: root → stage `flat placement` with one
    /// solve span that emits the `place.outer` rows.
    fn convergence_report(hpwl: &[f64], overflow: &[f64]) -> TraceReport {
        let span = |id, parent, name: &'static str| SpanRecord {
            id,
            parent,
            name,
            thread: 0,
            start_ns: 0,
            end_ns: 1_000_000,
            args: vec![],
        };
        let series = hpwl
            .iter()
            .zip(overflow.iter())
            .enumerate()
            .map(|(i, (&h, &o))| SeriesRow {
                name: "place.outer",
                span: 3,
                iter: i as u64,
                values: vec![("hpwl", h), ("overflow", o)],
            })
            .collect();
        TraceReport {
            root: 1,
            spans: vec![
                span(1, 0, "flow.flat"),
                span(2, 1, "flat placement"),
                span(3, 2, "place.solve"),
            ],
            instants: vec![],
            series,
            metrics: vec![],
            dropped_events: 0,
        }
    }

    #[test]
    fn doctor_flags_flat_series_as_stall() {
        let r = convergence_report(&[5e6; 10], &[0.4; 10]);
        let v = Doctor::default().diagnose_report(&r, &[]);
        assert!(
            v.iter()
                .any(|v| v.kind == VerdictKind::Stall && v.severity == Severity::Critical),
            "{v:?}"
        );
        assert_eq!(
            v[0].stage, "flat placement",
            "stage resolved through flow.*"
        );
    }

    #[test]
    fn doctor_passes_a_descending_series() {
        let hpwl: Vec<f64> = (0..10).map(|i| 5e6 * 0.95f64.powi(i)).collect();
        let overflow: Vec<f64> = (0..10).map(|i| 0.8 * 0.8f64.powi(i)).collect();
        let r = convergence_report(&hpwl, &overflow);
        let v = Doctor::default().diagnose_report(&r, &[]);
        assert!(v.is_empty(), "healthy run must be verdict-free: {v:?}");
    }

    #[test]
    fn doctor_flags_divergence_and_oscillation() {
        let mut hpwl: Vec<f64> = (0..10).map(|i| 5e6 + 1e5 * f64::from(i)).collect();
        hpwl[9] = 2e8;
        let overflow = vec![0.5; 10];
        let r = convergence_report(&hpwl, &overflow);
        let v = Doctor::default().diagnose_report(&r, &[]);
        assert!(
            v.iter()
                .any(|v| v.kind == VerdictKind::Divergence && v.severity == Severity::Critical),
            "{v:?}"
        );
        // Oscillation: alternate ±5% around a flat mean.
        let osc: Vec<f64> = (0..12)
            .map(|i| if i % 2 == 0 { 5e6 } else { 5.4e6 })
            .collect();
        let over: Vec<f64> = (0..12).map(|i| 0.5 + 0.001 * f64::from(i)).collect();
        let r = convergence_report(&osc, &over);
        let v = Doctor::default().diagnose_report(&r, &[]);
        assert!(
            v.iter().any(|v| v.kind == VerdictKind::Oscillation),
            "{v:?}"
        );
    }

    fn frame(name: &str, stage: &str, iter: u64, values: Vec<f32>) -> DecodedFrame {
        DecodedFrame {
            name: name.to_string(),
            stage: stage.to_string(),
            iter,
            nx: 2,
            ny: 2,
            values,
        }
    }

    #[test]
    fn doctor_flags_persistent_hotspot_bins() {
        let frames: Vec<DecodedFrame> = (0..6)
            .map(|i| {
                // Bin 3 always dominates; bin 0 cools off.
                frame(
                    "place.density_overflow",
                    "flat placement",
                    i,
                    vec![if i < 2 { 0.9 } else { 0.0 }, 0.0, 0.1, 1.0],
                )
            })
            .collect();
        let v =
            Doctor::default().diagnose_report(&convergence_report(&[1.0; 2], &[0.1; 2]), &frames);
        let hot = v
            .iter()
            .find(|v| v.kind == VerdictKind::HotspotPersistence)
            .unwrap_or_else(|| panic!("no hotspot verdict: {v:?}"));
        assert!(hot.evidence.contains("bin (1, 1)"), "{}", hot.evidence);
    }

    #[test]
    fn doctor_flags_undamped_displacement() {
        let frames: Vec<DecodedFrame> = (0..8)
            .map(|i| frame("place.displacement", "flat placement", i, vec![2.0; 4]))
            .collect();
        let v = Doctor::default().diagnose(&[], &[], &frames);
        assert!(
            v.iter()
                .any(|v| v.kind == VerdictKind::DisplacementConflict),
            "{v:?}"
        );
        // Decaying displacement passes.
        let frames: Vec<DecodedFrame> = (0..8)
            .map(|i| {
                frame(
                    "place.displacement",
                    "flat placement",
                    i,
                    vec![2.0 * 0.5f32.powi(i as i32); 4],
                )
            })
            .collect();
        let v = Doctor::default().diagnose(&[], &[], &frames);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn compare_localizes_regression_to_stage_and_region() {
        let base = sample();
        let mut slow = sample();
        for s in &mut slow.spans {
            s.end_ns = s.start_ns + (s.end_ns - s.start_ns) * 3;
        }
        let a = Analysis::from_report(&base).expect("analyzes");
        let b = Analysis::from_report(&slow).expect("analyzes");
        let bf = vec![frame(
            "place.density_overflow",
            "a",
            0,
            vec![0.1, 0.1, 0.1, 0.1],
        )];
        let nf = vec![frame(
            "place.density_overflow",
            "a",
            0,
            vec![0.1, 0.9, 0.1, 0.1],
        )];
        let v = compare_runs(&a, &b, &bf, &nf, &DiffOptions::default());
        assert!(
            v.iter()
                .any(|v| v.kind == VerdictKind::Regression && v.severity >= Severity::Warning),
            "{v:?}"
        );
        assert!(
            v.iter().any(|v| v.evidence.contains("bin (1, 0)")),
            "region localized: {v:?}"
        );
    }
}
