//! Hierarchical span tracing, metrics and convergence telemetry.
//!
//! The flow's observability layer: dependency-free, deterministic-safe
//! instrumentation that every crate in the workspace can call without
//! affecting numerical results. Three primitives:
//!
//! - **Spans** ([`span`], [`span_with`]) — RAII guards forming a
//!   parent/child tree via a thread-local ambient-parent cell. Workers of
//!   the `cp-parallel` pool re-parent themselves onto the submitting
//!   span with [`run_with_parent`], so a V-P&R candidate evaluated on a
//!   stolen chunk still nests under its cluster's span.
//! - **Metrics** ([`counter_add`], [`gauge_set`], [`observe`]) — a
//!   process-wide registry of monotonic counters, gauges and fixed-bucket
//!   histograms addressed by static names (plus an optional `u32` slot
//!   for per-worker instances).
//! - **Series** ([`series`]) — per-iteration convergence telemetry
//!   (global-placer HPWL/overflow/CG residuals, GNN epoch loss), each row
//!   tagged with the ambient span so a report can attribute it.
//!
//! # Overhead contract
//!
//! Tracing is off by default. Every entry point checks one relaxed atomic
//! load ([`enabled`] / [`telemetry_enabled`]) and returns immediately when
//! the level is [`Level::Off`] — no allocation, no lock, no clock read.
//! Instrumentation never feeds back into the instrumented computation, so
//! results are bitwise-identical at every level (pinned by the
//! `trace_determinism` tests).
//!
//! Levels: `Off` (0) — no-op; `Spans` (1) — spans and instant events;
//! `Full` (2) — spans plus metrics and series. `CP_TRACE` selects the
//! level in binaries that call [`init_from_env`] (`off`/`spans`/`full`;
//! `chrome` is an alias for `full` used by the `flowtrace` bin).
//!
//! Completed events accumulate in a process-wide buffer (bounded; see
//! [`TraceReport::dropped_events`]) until [`take_report`] extracts one
//! root span's subtree into a [`TraceReport`], which exports structured
//! JSON and Chrome `trace_event` JSON (Perfetto-loadable).
//!
//! Two streaming/persistence layers build on the record sites:
//!
//! - [`sink`] — live event streaming into a bounded, drop-on-overflow
//!   channel behind one extra relaxed atomic load ([`sink_attached`]),
//!   with [`ProgressSink`] folding events into stage-level progress.
//! - [`ledger`] — an append-only, schema-validated JSONL run ledger
//!   capturing each run's QoR snapshot, integer-ns stage self-times and
//!   convergence summaries, plus cross-run trend analysis.

pub mod analysis;
pub mod fields;
pub mod json;
pub mod ledger;
pub mod report;
pub mod sink;

pub use analysis::{
    Analysis, DiffEntry, DiffKind, DiffOptions, Doctor, NameAgg, PathStep, Severity, TraceDiff,
    Verdict, VerdictKind,
};
pub use fields::{DecodedFrame, FieldFrame, FrameCapture, FrameData};
pub use ledger::{LedgerEntry, SeriesSummary, TrendReport, TrendRow};
pub use report::{chrome_trace, MetricSnapshot, MetricValue, TraceReport};
pub use sink::{
    attach_sink, detach_sink, drain_sink, pump_sink, sink_attached, ProgressSink, ProgressSnapshot,
    SinkBatch, SinkEvent, StageState, TraceSink,
};

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Locks ignoring poisoning: the buffers hold plain telemetry data that
/// stays usable after a panicking instrumented section.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serializes tests that touch process-global state (the level byte and
/// the sink channel) across this crate's test modules.
#[cfg(test)]
pub(crate) fn test_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Level

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Record nothing; every call is one atomic load.
    Off = 0,
    /// Record spans and instant events.
    Spans = 1,
    /// Record spans, metrics and convergence series.
    Full = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide trace level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::SeqCst);
}

/// The current trace level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Spans,
        _ => Level::Full,
    }
}

/// `true` when spans are being recorded (level ≥ `Spans`). One relaxed
/// atomic load — the whole disabled-path cost.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != 0
}

/// `true` when metrics and series are being recorded (level `Full`).
#[inline]
pub fn telemetry_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= 2
}

/// Parses `CP_TRACE` (`off`/`0`, `spans`/`1`, `full`/`2`/`chrome`/`on`);
/// unset or unrecognized means `Off`.
pub fn level_from_env() -> Level {
    match std::env::var("CP_TRACE").as_deref() {
        Ok("spans") | Ok("1") => Level::Spans,
        Ok("full") | Ok("2") | Ok("chrome") | Ok("on") => Level::Full,
        _ => Level::Off,
    }
}

/// Sets the level from `CP_TRACE` (see [`level_from_env`]) and enables
/// field capture from `CP_TRACE_FIELDS` (see [`fields::init_from_env`]).
pub fn init_from_env() {
    set_level(level_from_env());
    fields::init_from_env();
}

// ---------------------------------------------------------------------------
// Clocks, ids, thread ordinals

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ORD: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// A small dense per-thread ordinal (assigned on first use), stable for
/// the thread's lifetime. Used as the Chrome-trace `tid` and as the
/// metric slot for per-worker counters.
pub fn thread_ordinal() -> u32 {
    THREAD_ORD.with(|c| {
        let v = c.get();
        if v != u32::MAX {
            return v;
        }
        let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

/// The id of the innermost open span on this thread (0 when tracing is
/// off or no span is open). This is what `cp-parallel` captures at job
/// submission so workers can attach to the submitting span.
pub fn current_span_id() -> u64 {
    if !enabled() {
        return 0;
    }
    CURRENT.with(Cell::get)
}

/// Runs `f` with the ambient parent span set to `parent`, restoring the
/// previous ambient on exit (including unwind). Pool workers wrap stolen
/// chunks in this so spans they open nest under the submitter's span.
pub fn run_with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT.with(|c| c.replace(parent));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Records and the collector

/// A typed span/instant argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, cluster ids, iteration numbers).
    U(u64),
    /// Float (costs, ratios).
    F(f64),
    /// Static string (verdicts, modes).
    S(&'static str),
}

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide, never 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Static span name.
    pub name: &'static str,
    /// Ordinal of the thread the span ran on.
    pub thread: u32,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end_ns.saturating_sub(self.start_ns)) as f64 * 1e-9
    }
}

/// A point-in-time event (recovery events, fallbacks).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRecord {
    /// Static event name.
    pub name: &'static str,
    /// Enclosing span at emission time (0 = none).
    pub span: u64,
    /// Ordinal of the emitting thread.
    pub thread: u32,
    /// Timestamp, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// One row of a convergence series (one iteration's values).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Static series name.
    pub name: &'static str,
    /// Enclosing span at emission time (0 = none).
    pub span: u64,
    /// Iteration index within the series.
    pub iter: u64,
    /// Named values for this iteration.
    pub values: Vec<(&'static str, f64)>,
}

/// Cap on buffered events; beyond it new events are dropped and counted
/// (see [`TraceReport::dropped_events`]). Generous for any real run —
/// the cap exists so a traced process that never takes reports stays
/// bounded.
const MAX_BUFFERED_EVENTS: usize = 1 << 20;

#[derive(Default)]
struct Collector {
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    series: Vec<SeriesRow>,
    dropped: u64,
}

impl Collector {
    fn total(&self) -> usize {
        self.spans.len() + self.instants.len() + self.series.len()
    }
}

static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();

fn collector() -> &'static Mutex<Collector> {
    COLLECTOR.get_or_init(Mutex::default)
}

// ---------------------------------------------------------------------------
// Spans

/// RAII span guard: opening sets the thread's ambient parent, dropping
/// restores it and records the completed [`SpanRecord`]. Inert (no-op)
/// when tracing was off at creation. Must be dropped on the thread that
/// created it.
#[must_use = "a span measures the scope it lives in; dropping it immediately records an empty span"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    id: u64,
    parent: u64,
    name: &'static str,
    thread: u32,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// Opens a span. One atomic load and no other work when tracing is off.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span with key/value arguments.
pub fn span_with(name: &'static str, args: &[(&'static str, ArgValue)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    let thread = thread_ordinal();
    let start_ns = now_ns();
    if sink::sink_attached() {
        sink::emit(SinkEvent::SpanOpen {
            id,
            parent,
            name,
            thread,
            start_ns,
        });
    }
    SpanGuard {
        inner: Some(SpanInner {
            id,
            parent,
            name,
            thread,
            start_ns,
            args: args.to_vec(),
        }),
    }
}

impl SpanGuard {
    /// The span id (0 for an inert guard).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// Attaches an argument decided after the span opened (e.g. a
    /// verdict known only once the work finished).
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        if let Some(i) = &mut self.inner {
            i.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            // Restore the ambient parent even if the buffer is full, so
            // nesting stays consistent when the level flips mid-run.
            CURRENT.with(|c| c.set(i.parent));
            let end_ns = now_ns();
            if sink::sink_attached() {
                sink::emit(SinkEvent::SpanClose {
                    id: i.id,
                    parent: i.parent,
                    name: i.name,
                    thread: i.thread,
                    start_ns: i.start_ns,
                    end_ns,
                });
            }
            let mut c = lock(collector());
            if c.total() < MAX_BUFFERED_EVENTS {
                c.spans.push(SpanRecord {
                    id: i.id,
                    parent: i.parent,
                    name: i.name,
                    thread: i.thread,
                    start_ns: i.start_ns,
                    end_ns,
                    args: i.args,
                });
            } else {
                c.dropped += 1;
            }
        }
    }
}

/// Emits a point-in-time event under the ambient span (recovery events,
/// shape fallbacks). Recorded at level ≥ `Spans`.
pub fn instant(name: &'static str, args: &[(&'static str, ArgValue)]) {
    if !enabled() {
        return;
    }
    let rec = InstantRecord {
        name,
        span: CURRENT.with(Cell::get),
        thread: thread_ordinal(),
        ts_ns: now_ns(),
        args: args.to_vec(),
    };
    if sink::sink_attached() {
        sink::emit(SinkEvent::Instant {
            name: rec.name,
            span: rec.span,
            thread: rec.thread,
            ts_ns: rec.ts_ns,
            args: rec.args.clone(),
        });
    }
    let mut c = lock(collector());
    if c.total() < MAX_BUFFERED_EVENTS {
        c.instants.push(rec);
    } else {
        c.dropped += 1;
    }
}

/// Appends one iteration's values to a convergence series, tagged with
/// the ambient span. Recorded at level `Full` only.
pub fn series(name: &'static str, iter: u64, values: &[(&'static str, f64)]) {
    if !telemetry_enabled() {
        return;
    }
    let row = SeriesRow {
        name,
        span: CURRENT.with(Cell::get),
        iter,
        values: values.to_vec(),
    };
    if sink::sink_attached() {
        sink::emit(SinkEvent::SeriesPoint {
            name: row.name,
            span: row.span,
            iter: row.iter,
            values: row.values.clone(),
        });
    }
    let mut c = lock(collector());
    if c.total() < MAX_BUFFERED_EVENTS {
        c.series.push(row);
    } else {
        c.dropped += 1;
    }
}

// ---------------------------------------------------------------------------
// Metrics registry

/// Slot value for unslotted metrics.
pub const NO_SLOT: u32 = u32::MAX;

/// Histogram bucket upper bounds (log-spaced; a final +∞ bucket catches
/// the rest). Wide enough for iteration counts and residuals alike.
pub const HIST_BOUNDS: [f64; 12] = [
    1e-9, 1e-6, 1e-4, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
];

enum Metric {
    Counter(u64),
    Gauge(f64),
    Hist {
        counts: [u64; HIST_BOUNDS.len() + 1],
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    },
}

static METRICS: OnceLock<Mutex<BTreeMap<(&'static str, u32), Metric>>> = OnceLock::new();

fn metrics() -> &'static Mutex<BTreeMap<(&'static str, u32), Metric>> {
    METRICS.get_or_init(Mutex::default)
}

/// Adds to a monotonic counter. No-op below level `Full`.
pub fn counter_add(name: &'static str, delta: u64) {
    counter_add_slot(name, NO_SLOT, delta);
}

/// Adds to a slotted monotonic counter (e.g. per pool worker).
pub fn counter_add_slot(name: &'static str, slot: u32, delta: u64) {
    if !telemetry_enabled() {
        return;
    }
    let mut m = lock(metrics());
    let total = match m.entry((name, slot)).or_insert(Metric::Counter(0)) {
        Metric::Counter(v) => {
            *v += delta;
            *v
        }
        other => {
            *other = Metric::Counter(delta);
            delta
        }
    };
    drop(m);
    if sink::sink_attached() {
        sink::emit(SinkEvent::Counter { name, slot, total });
    }
}

/// Sets a gauge to its latest value. No-op below level `Full`.
pub fn gauge_set(name: &'static str, value: f64) {
    if !telemetry_enabled() {
        return;
    }
    let mut m = lock(metrics());
    *m.entry((name, NO_SLOT)).or_insert(Metric::Gauge(value)) = Metric::Gauge(value);
    drop(m);
    if sink::sink_attached() {
        sink::emit(SinkEvent::Gauge { name, value });
    }
}

/// Records one observation into a fixed-bucket histogram. No-op below
/// level `Full`.
pub fn observe(name: &'static str, value: f64) {
    if !telemetry_enabled() {
        return;
    }
    let mut m = lock(metrics());
    let e = m.entry((name, NO_SLOT)).or_insert(Metric::Hist {
        counts: [0; HIST_BOUNDS.len() + 1],
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    });
    if let Metric::Hist {
        counts,
        count,
        sum,
        min,
        max,
    } = e
    {
        let b = HIST_BOUNDS
            .iter()
            .position(|&ub| value <= ub)
            .unwrap_or(HIST_BOUNDS.len());
        counts[b] += 1;
        *count += 1;
        *sum += value;
        *min = min.min(value);
        *max = max.max(value);
    }
}

/// Reads a counter's current value (0 when absent) — a test/report hook,
/// not a hot-path API.
pub fn counter_value(name: &'static str) -> u64 {
    let m = lock(metrics());
    m.iter()
        .filter(|((n, _), _)| *n == name)
        .map(|(_, v)| match v {
            Metric::Counter(c) => *c,
            _ => 0,
        })
        .sum()
}

fn snapshot_metrics() -> Vec<MetricSnapshot> {
    let m = lock(metrics());
    m.iter()
        .map(|(&(name, slot), v)| MetricSnapshot {
            name,
            slot: (slot != NO_SLOT).then_some(slot),
            value: match v {
                Metric::Counter(c) => MetricValue::Counter(*c),
                Metric::Gauge(g) => MetricValue::Gauge(*g),
                Metric::Hist {
                    counts,
                    count,
                    sum,
                    min,
                    max,
                } => MetricValue::Histogram {
                    count: *count,
                    sum: *sum,
                    min: if *count > 0 { *min } else { 0.0 },
                    max: if *count > 0 { *max } else { 0.0 },
                    buckets: HIST_BOUNDS
                        .iter()
                        .copied()
                        .chain(std::iter::once(f64::INFINITY))
                        .zip(counts.iter().copied())
                        .collect(),
                },
            },
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Report extraction

/// Closes `root` and extracts its subtree — spans, instants and series
/// transitively parented under it — into a [`TraceReport`], together with
/// a snapshot of the (process-cumulative) metrics registry. Events that
/// belong to *other* subtrees stay buffered for their own `take_report`,
/// so nested or concurrent captures don't steal from each other.
///
/// Returns `None` when the guard is inert (tracing was off when the root
/// span opened).
pub fn take_report(root: SpanGuard) -> Option<TraceReport> {
    let root_id = root.id();
    drop(root);
    if root_id == 0 {
        return None;
    }
    let mut c = lock(collector());
    let spans = std::mem::take(&mut c.spans);
    let instants = std::mem::take(&mut c.instants);
    let series = std::mem::take(&mut c.series);
    let dropped = c.dropped;

    let parent_of: HashMap<u64, u64> = spans.iter().map(|s| (s.id, s.parent)).collect();
    let mut memo: HashMap<u64, bool> = HashMap::new();
    let mut in_subtree = |mut id: u64| -> bool {
        let mut chain = Vec::new();
        let hit = loop {
            if id == root_id {
                break true;
            }
            if id == 0 {
                break false;
            }
            if let Some(&known) = memo.get(&id) {
                break known;
            }
            chain.push(id);
            match parent_of.get(&id) {
                Some(&p) => id = p,
                None => break false,
            }
        };
        for c in chain {
            memo.insert(c, hit);
        }
        hit
    };

    let (mut mine, rest): (Vec<_>, Vec<_>) = spans.into_iter().partition(|s| in_subtree(s.id));
    let (mine_inst, rest_inst): (Vec<_>, Vec<_>) =
        instants.into_iter().partition(|i| in_subtree(i.span));
    let (mine_series, rest_series): (Vec<_>, Vec<_>) =
        series.into_iter().partition(|r| in_subtree(r.span));
    c.spans = rest;
    c.instants = rest_inst;
    c.series = rest_series;
    drop(c);

    mine.sort_by_key(|s| (s.start_ns, s.id));
    Some(TraceReport {
        root: root_id,
        spans: mine,
        instants: mine_inst,
        series: mine_series,
        metrics: snapshot_metrics(),
        dropped_events: dropped,
    })
}

/// Clears every buffered event and all metrics — for bins and tests that
/// measure multiple configurations in one process.
pub fn clear() {
    let mut c = lock(collector());
    c.spans.clear();
    c.instants.clear();
    c.series.clear();
    c.dropped = 0;
    drop(c);
    lock(metrics()).clear();
    fields::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Level is process-global; tests that flip it serialize here.
    fn serial() -> MutexGuard<'static, ()> {
        test_serial()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = serial();
        set_level(Level::Off);
        let root = span("off-root");
        assert_eq!(root.id(), 0);
        instant("off-instant", &[]);
        series("off-series", 0, &[("v", 1.0)]);
        counter_add("off-counter", 5);
        assert!(take_report(root).is_none());
        assert_eq!(counter_value("off-counter"), 0);
    }

    #[test]
    fn spans_nest_and_report_prunes_to_the_subtree() {
        let _g = serial();
        set_level(Level::Spans);
        let root = span("root");
        let root_id = root.id();
        assert!(root_id != 0);
        {
            let child = span_with("child", &[("k", ArgValue::U(3))]);
            assert_eq!(current_span_id(), child.id());
            let grand = span("grandchild");
            drop(grand);
            drop(child);
        }
        assert_eq!(current_span_id(), root_id);
        // A foreign root whose events must survive this take.
        let foreign = span("foreign-root");
        let foreign_id = foreign.id();
        let report = take_report(root).expect("enabled capture yields a report");
        set_level(Level::Off);
        assert_eq!(report.root, root_id);
        let names: Vec<_> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["root", "child", "grandchild"]);
        let child = &report.spans[1];
        assert_eq!(child.parent, root_id);
        assert_eq!(child.args, vec![("k", ArgValue::U(3))]);
        assert_eq!(report.spans[2].parent, child.id);
        assert!(report.spans.iter().all(|s| s.id != foreign_id));
        // The foreign subtree is still extractable afterwards.
        set_level(Level::Spans);
        let foreign_report = take_report(foreign).expect("foreign capture still buffered");
        set_level(Level::Off);
        assert_eq!(foreign_report.spans.len(), 1);
        assert_eq!(foreign_report.spans[0].name, "foreign-root");
    }

    #[test]
    fn cross_thread_parenting_via_run_with_parent() {
        let _g = serial();
        set_level(Level::Spans);
        let root = span("xthread-root");
        let parent = current_span_id();
        let handle = std::thread::spawn(move || {
            run_with_parent(parent, || {
                let s = span("worker-span");
                let id = s.id();
                drop(s);
                id
            })
        });
        let worker_span = handle.join().expect("worker thread joins");
        let report = take_report(root).expect("capture yields a report");
        set_level(Level::Off);
        let w = report
            .spans
            .iter()
            .find(|s| s.id == worker_span)
            .expect("worker span captured");
        assert_eq!(w.parent, report.root);
        assert_ne!(w.thread, report.spans[0].thread);
    }

    #[test]
    fn instants_and_series_attach_to_the_ambient_span() {
        let _g = serial();
        set_level(Level::Full);
        let root = span("telemetry-root");
        let inner = span("loop");
        let inner_id = inner.id();
        instant("revert", &[("iteration", ArgValue::U(4))]);
        series("hpwl", 0, &[("hpwl", 10.0), ("overflow", 0.5)]);
        series("hpwl", 1, &[("hpwl", 9.0), ("overflow", 0.4)]);
        drop(inner);
        let report = take_report(root).expect("capture yields a report");
        set_level(Level::Off);
        assert_eq!(report.instants.len(), 1);
        assert_eq!(report.instants[0].span, inner_id);
        assert_eq!(report.series.len(), 2);
        assert!(report.series.iter().all(|r| r.span == inner_id));
        assert_eq!(report.series[1].iter, 1);
        clear();
    }

    #[test]
    fn metrics_accumulate_by_kind_and_slot() {
        let _g = serial();
        set_level(Level::Full);
        clear();
        counter_add("m.counter", 2);
        counter_add("m.counter", 3);
        counter_add_slot("m.slotted", 0, 1);
        counter_add_slot("m.slotted", 1, 10);
        gauge_set("m.gauge", 1.5);
        gauge_set("m.gauge", 2.5);
        observe("m.hist", 0.5);
        observe("m.hist", 50.0);
        let root = span("metrics-root");
        let report = take_report(root).expect("capture yields a report");
        set_level(Level::Off);
        assert_eq!(counter_value("m.counter"), 5);
        assert_eq!(counter_value("m.slotted"), 11);
        let gauge = report
            .metrics
            .iter()
            .find(|m| m.name == "m.gauge")
            .expect("gauge snapshot present");
        assert_eq!(gauge.value, MetricValue::Gauge(2.5));
        let hist = report
            .metrics
            .iter()
            .find(|m| m.name == "m.hist")
            .expect("histogram snapshot present");
        match &hist.value {
            MetricValue::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
            } => {
                assert_eq!(*count, 2);
                assert!((sum - 50.5).abs() < 1e-12);
                assert_eq!(*min, 0.5);
                assert_eq!(*max, 50.0);
                assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 2);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        clear();
    }

    #[test]
    fn level_parsing_covers_aliases() {
        assert_eq!(Level::Off as u8, 0);
        for (s, want) in [
            ("off", Level::Off),
            ("0", Level::Off),
            ("spans", Level::Spans),
            ("1", Level::Spans),
            ("full", Level::Full),
            ("2", Level::Full),
            ("chrome", Level::Full),
            ("on", Level::Full),
            ("garbage", Level::Off),
        ] {
            let parsed = match s {
                "spans" | "1" => Level::Spans,
                "full" | "2" | "chrome" | "on" => Level::Full,
                _ => Level::Off,
            };
            assert_eq!(parsed, want, "CP_TRACE={s}");
        }
    }
}
