//! Spatial field frames: per-bin grid snapshots on the trace plane.
//!
//! Every observability layer below this one is scalar — spans, counters,
//! series rows. Fields add the missing spatial axis: a [`FieldFrame`] is
//! one f32 grid (density overflow, displacement, eDensity charge, GCell
//! congestion) stamped with the stage it was recorded in and an
//! iteration index. Consecutive frames of the same `(name, stage)`
//! sequence are stored as sparse deltas against the previous frame when
//! that is smaller, so a 30-iteration convergence movie costs little
//! more than its first frame plus what actually changed.
//!
//! The discipline mirrors spans and the sink:
//!
//! - **Free when off.** Every record site is gated on [`enabled`] — a
//!   single relaxed atomic load — before anything is computed. The
//!   grid-building closure passed to [`record_with`] never runs while
//!   fields are off.
//! - **Inert when on.** Recording copies values out of the flow; nothing
//!   recorded ever feeds back into placement or routing, so flow outputs
//!   are bitwise identical with fields on and off.
//! - **Scoped.** Frames are only captured inside a [`scope`] — a
//!   thread-local stage label the flow opens around its top-level
//!   placement and PPA stages. Worker threads (V-P&R candidate
//!   placements) never see an open scope, which keeps the captured
//!   sequence deterministic in content *and order* for a given flow.
//! - **Budgeted.** A per-run frame budget bounds memory; frames past the
//!   budget are counted in `dropped_frames`, never silently lost.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{escape, fmt_f64, Json};
use crate::lock;

/// JSON Schema for the frames artifact, compiled into the binary so the
/// writer and the checker cannot drift apart.
pub const SCHEMA_JSON: &str = include_str!("../../../schemas/field_frames.schema.json");

/// Default per-run frame budget: enough for a full clustered flow's
/// density/displacement/charge/congestion movies at every stage, small
/// enough that a runaway loop cannot exhaust memory.
pub const DEFAULT_FRAME_BUDGET: usize = 4096;

// ---------------------------------------------------------------------------
// Gating

/// One relaxed load at every record site, exactly like the level byte
/// and the sink flag.
static FIELDS_ON: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The ambient stage label. `None` outside any [`scope`] — notably
    /// on pool worker threads, whose placements are never captured.
    static SCOPE: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Whether field capture is enabled. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    FIELDS_ON.load(Ordering::Relaxed)
}

/// Whether a frame recorded *here, now* would be kept: fields enabled
/// (one relaxed load; the fast path out) and an ambient [`scope`] open
/// on this thread.
#[inline]
pub fn recording() -> bool {
    enabled() && SCOPE.with(Cell::get).is_some()
}

/// Enables field capture with the given frame budget, clearing any
/// frames left from a previous run.
pub fn enable(budget: usize) {
    let mut s = lock(store());
    s.frames.clear();
    s.last.clear();
    s.dropped = 0;
    s.budget = budget;
    drop(s);
    FIELDS_ON.store(true, Ordering::Relaxed);
}

/// Disables field capture. Buffered frames stay until [`take`] or
/// [`clear`].
pub fn disable() {
    FIELDS_ON.store(false, Ordering::Relaxed);
}

/// Enables field capture when `CP_TRACE_FIELDS` is set (`1`/`on` for the
/// default budget, any other integer for an explicit budget).
pub fn init_from_env() {
    match std::env::var("CP_TRACE_FIELDS").as_deref() {
        Ok("1") | Ok("on") => enable(DEFAULT_FRAME_BUDGET),
        Ok(other) => {
            if let Ok(budget) = other.parse::<usize>() {
                if budget > 0 {
                    enable(budget);
                }
            }
        }
        Err(_) => {}
    }
}

/// An RAII guard holding the ambient stage label open on this thread.
pub struct FieldScope {
    prev: Option<&'static str>,
}

impl Drop for FieldScope {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// Opens a field-recording scope labelled with `stage` on the current
/// thread, restoring the previous label when the guard drops. The flow
/// opens one around each stage whose spatial state is worth capturing;
/// record sites inherit the label so the placer never needs to know
/// which stage it is running under.
#[must_use = "the scope closes when the guard drops"]
pub fn scope(stage: &'static str) -> FieldScope {
    FieldScope {
        prev: SCOPE.with(|s| s.replace(Some(stage))),
    }
}

// ---------------------------------------------------------------------------
// Frames

/// How one frame's values are stored.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameData {
    /// The full `nx × ny` grid, row-major.
    Dense(Vec<f32>),
    /// Cells that changed since the previous frame of the same
    /// `(name, stage)` sequence: parallel `(index, new value)` arrays.
    Delta {
        /// Row-major cell indices, strictly increasing.
        indices: Vec<u32>,
        /// New values, one per index.
        values: Vec<f32>,
    },
}

/// One grid snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldFrame {
    /// What the grid measures, e.g. `place.density_overflow`.
    pub name: &'static str,
    /// The stage label of the enclosing [`scope`].
    pub stage: &'static str,
    /// Iteration index within the sequence (the placer's outer
    /// iteration, the backend's spread call, …).
    pub iter: u64,
    /// Grid width (cells per row).
    pub nx: u32,
    /// Grid height (rows).
    pub ny: u32,
    /// Values, dense or delta-encoded against the previous frame.
    pub data: FrameData,
}

/// Everything [`take`] drains: the frames in record order plus the
/// budget accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameCapture {
    /// Frames in record order.
    pub frames: Vec<FieldFrame>,
    /// Frames refused because the budget was exhausted.
    pub dropped_frames: u64,
    /// The budget the capture ran under.
    pub budget: usize,
}

/// A frame decoded back to a dense grid — the analysis/render plane's
/// view, also produced when parsing a frames JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// What the grid measures.
    pub name: String,
    /// Stage label the frame was recorded under.
    pub stage: String,
    /// Iteration index within its sequence.
    pub iter: u64,
    /// Grid width.
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    /// The full row-major grid.
    pub values: Vec<f32>,
}

struct FieldStore {
    frames: Vec<FieldFrame>,
    /// Last dense grid per `(name, stage)`, the delta-encoding base.
    last: BTreeMap<(&'static str, &'static str), Vec<f32>>,
    dropped: u64,
    budget: usize,
}

fn store() -> &'static Mutex<FieldStore> {
    static STORE: OnceLock<Mutex<FieldStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(FieldStore {
            frames: Vec::new(),
            last: BTreeMap::new(),
            dropped: 0,
            budget: DEFAULT_FRAME_BUDGET,
        })
    })
}

/// Records one frame, building the grid only if it will be kept: the
/// closure runs after the [`recording`] gate passes, so a disabled site
/// costs one relaxed load. The closure must return exactly `nx * ny`
/// row-major values; a mismatched grid is dropped and counted.
pub fn record_with<F>(name: &'static str, iter: u64, nx: usize, ny: usize, values: F)
where
    F: FnOnce() -> Vec<f32>,
{
    if !enabled() {
        return;
    }
    let Some(stage) = SCOPE.with(Cell::get) else {
        return;
    };
    let grid = values();
    let mut s = lock(store());
    if s.frames.len() >= s.budget {
        s.dropped += 1;
        return;
    }
    if grid.len() != nx * ny {
        s.dropped += 1;
        return;
    }
    let data = match s.last.get(&(name, stage)) {
        Some(prev) if prev.len() == grid.len() => {
            let mut indices = Vec::new();
            let mut vals = Vec::new();
            for (i, (&new, &old)) in grid.iter().zip(prev.iter()).enumerate() {
                if new.to_bits() != old.to_bits() {
                    indices.push(i as u32);
                    vals.push(new);
                }
            }
            // A delta entry costs an index and a value; past half the
            // grid changed, dense is smaller.
            if indices.len() * 2 >= grid.len() {
                FrameData::Dense(grid.clone())
            } else {
                FrameData::Delta {
                    indices,
                    values: vals,
                }
            }
        }
        _ => FrameData::Dense(grid.clone()),
    };
    s.last.insert((name, stage), grid);
    s.frames.push(FieldFrame {
        name,
        stage,
        iter,
        nx: nx as u32,
        ny: ny as u32,
        data,
    });
}

/// Drains every buffered frame, returning them with the budget
/// accounting. The store resets so the next run starts clean.
pub fn take() -> FrameCapture {
    let mut s = lock(store());
    let budget = s.budget;
    FrameCapture {
        frames: std::mem::take(&mut s.frames),
        dropped_frames: std::mem::take(&mut s.dropped),
        budget,
    }
}

/// Discards all buffered frames and delta bases (the [`crate::clear`]
/// hook). The enabled flag and budget are untouched.
pub fn clear() {
    let mut s = lock(store());
    s.frames.clear();
    s.last.clear();
    s.dropped = 0;
}

/// Decodes a capture's frames back to dense grids, applying deltas per
/// `(name, stage)` sequence in record order. A delta without a base (or
/// with an out-of-range index) yields zeros for the missing cells — the
/// decoder never fails on its own writer's output.
pub fn decode(capture: &FrameCapture) -> Vec<DecodedFrame> {
    let mut last: BTreeMap<(&str, &str), Vec<f32>> = BTreeMap::new();
    let mut out = Vec::with_capacity(capture.frames.len());
    for f in &capture.frames {
        let n = f.nx as usize * f.ny as usize;
        let values = match &f.data {
            FrameData::Dense(v) => v.clone(),
            FrameData::Delta { indices, values } => {
                let mut base = last
                    .get(&(f.name, f.stage))
                    .cloned()
                    .unwrap_or_else(|| vec![0.0; n]);
                base.resize(n, 0.0);
                for (&i, &v) in indices.iter().zip(values.iter()) {
                    if let Some(cell) = base.get_mut(i as usize) {
                        *cell = v;
                    }
                }
                base
            }
        };
        last.insert((f.name, f.stage), values.clone());
        out.push(DecodedFrame {
            name: f.name.to_string(),
            stage: f.stage.to_string(),
            iter: f.iter,
            nx: f.nx as usize,
            ny: f.ny as usize,
            values,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// JSON

fn write_values(out: &mut String, values: &[f32]) {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(f64::from(v)));
    }
    out.push(']');
}

/// Serializes a capture as the `field_frames.schema.json` document.
/// Byte-deterministic for a given capture.
pub fn to_json(capture: &FrameCapture) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":1");
    out.push_str(&format!(",\"budget\":{}", capture.budget));
    out.push_str(&format!(",\"dropped_frames\":{}", capture.dropped_frames));
    out.push_str(",\"frames\":[");
    for (i, f) in capture.frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"stage\":\"{}\",\"iter\":{},\"nx\":{},\"ny\":{}",
            escape(f.name),
            escape(f.stage),
            f.iter,
            f.nx,
            f.ny
        ));
        match &f.data {
            FrameData::Dense(values) => {
                out.push_str(",\"encoding\":\"dense\",\"values\":");
                write_values(&mut out, values);
            }
            FrameData::Delta { indices, values } => {
                out.push_str(",\"encoding\":\"delta\",\"indices\":[");
                for (j, &ix) in indices.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&ix.to_string());
                }
                out.push_str("],\"values\":");
                write_values(&mut out, values);
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn frame_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("frame missing numeric '{key}'"))
}

/// Parses a frames document and decodes every frame to a dense grid,
/// applying deltas per `(name, stage)` sequence in file order.
///
/// # Errors
///
/// Returns a message when the document is not shaped like
/// `field_frames.schema.json` output.
pub fn decode_json(doc: &Json) -> Result<Vec<DecodedFrame>, String> {
    let frames = doc
        .get("frames")
        .and_then(Json::as_array)
        .ok_or("frames document has no 'frames' array")?;
    let mut last: BTreeMap<(String, String), Vec<f32>> = BTreeMap::new();
    let mut out = Vec::with_capacity(frames.len());
    for f in frames {
        let name = f
            .get("name")
            .and_then(Json::as_str)
            .ok_or("frame missing 'name'")?
            .to_string();
        let stage = f
            .get("stage")
            .and_then(Json::as_str)
            .ok_or("frame missing 'stage'")?
            .to_string();
        let iter = frame_u64(f, "iter")?;
        let nx = frame_u64(f, "nx")? as usize;
        let ny = frame_u64(f, "ny")? as usize;
        let n = nx * ny;
        let encoding = f
            .get("encoding")
            .and_then(Json::as_str)
            .ok_or("frame missing 'encoding'")?;
        let raw: Vec<f32> = f
            .get("values")
            .and_then(Json::as_array)
            .ok_or("frame missing 'values'")?
            .iter()
            .filter_map(Json::as_f64)
            .map(|v| v as f32)
            .collect();
        let values = match encoding {
            "dense" => {
                if raw.len() != n {
                    return Err(format!(
                        "dense frame {name}/{stage}#{iter}: {} values for {nx}x{ny}",
                        raw.len()
                    ));
                }
                raw
            }
            "delta" => {
                let indices: Vec<usize> = f
                    .get("indices")
                    .and_then(Json::as_array)
                    .ok_or("delta frame missing 'indices'")?
                    .iter()
                    .filter_map(Json::as_f64)
                    .map(|v| v as usize)
                    .collect();
                if indices.len() != raw.len() {
                    return Err(format!(
                        "delta frame {name}/{stage}#{iter}: {} indices, {} values",
                        indices.len(),
                        raw.len()
                    ));
                }
                let mut base = last
                    .get(&(name.clone(), stage.clone()))
                    .cloned()
                    .unwrap_or_else(|| vec![0.0; n]);
                base.resize(n, 0.0);
                for (&i, &v) in indices.iter().zip(raw.iter()) {
                    if i >= n {
                        return Err(format!(
                            "delta frame {name}/{stage}#{iter}: index {i} out of {n}"
                        ));
                    }
                    base[i] = v;
                }
                base
            }
            other => return Err(format!("unknown frame encoding '{other}'")),
        };
        last.insert((name.clone(), stage.clone()), values.clone());
        out.push(DecodedFrame {
            name,
            stage,
            iter,
            nx,
            ny,
            values,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, validate};

    /// Serializes tests that flip the process-global fields flag.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        crate::test_serial()
    }

    fn grid(vals: &[f32]) -> Vec<f32> {
        vals.to_vec()
    }

    #[test]
    fn off_is_inert_and_scope_required() {
        let _g = serial();
        disable();
        clear();
        let ran = std::cell::Cell::new(false);
        record_with("t.field", 0, 2, 2, || {
            ran.set(true);
            grid(&[1.0, 2.0, 3.0, 4.0])
        });
        assert!(!ran.get(), "closure must not run while fields are off");
        // Enabled but no scope: still nothing recorded.
        enable(16);
        record_with("t.field", 0, 2, 2, || {
            ran.set(true);
            grid(&[1.0, 2.0, 3.0, 4.0])
        });
        assert!(!ran.get(), "closure must not run outside a scope");
        assert!(take().frames.is_empty());
        disable();
    }

    #[test]
    fn delta_encoding_roundtrips() {
        let _g = serial();
        enable(16);
        {
            let _s = scope("stage-a");
            record_with("t.delta", 0, 2, 2, || grid(&[1.0, 2.0, 3.0, 4.0]));
            record_with("t.delta", 1, 2, 2, || grid(&[1.0, 2.5, 3.0, 4.0]));
            record_with("t.delta", 2, 2, 2, || grid(&[9.0, 8.0, 7.0, 6.0]));
        }
        let cap = take();
        disable();
        assert_eq!(cap.frames.len(), 3);
        assert!(matches!(cap.frames[0].data, FrameData::Dense(_)));
        match &cap.frames[1].data {
            FrameData::Delta { indices, values } => {
                assert_eq!(indices, &[1]);
                assert_eq!(values, &[2.5]);
            }
            other => panic!("one-cell change must delta-encode, got {other:?}"),
        }
        // Every cell changed: dense wins.
        assert!(matches!(cap.frames[2].data, FrameData::Dense(_)));
        let decoded = decode(&cap);
        assert_eq!(decoded[1].values, grid(&[1.0, 2.5, 3.0, 4.0]));
        assert_eq!(decoded[2].values, grid(&[9.0, 8.0, 7.0, 6.0]));
        assert_eq!(decoded[1].stage, "stage-a");
    }

    #[test]
    fn budget_drops_and_counts() {
        let _g = serial();
        enable(2);
        {
            let _s = scope("stage-b");
            for it in 0..5u64 {
                record_with("t.budget", it, 1, 1, || grid(&[it as f32]));
            }
        }
        let cap = take();
        disable();
        assert_eq!(cap.frames.len(), 2);
        assert_eq!(cap.dropped_frames, 3);
        assert_eq!(cap.budget, 2);
    }

    #[test]
    fn scope_nests_and_restores() {
        let _g = serial();
        enable(16);
        {
            let _outer = scope("outer");
            {
                let _inner = scope("inner");
                record_with("t.scope", 0, 1, 1, || grid(&[1.0]));
            }
            record_with("t.scope", 1, 1, 1, || grid(&[2.0]));
        }
        assert!(!recording(), "scope must close when the guard drops");
        let cap = take();
        disable();
        assert_eq!(cap.frames[0].stage, "inner");
        assert_eq!(cap.frames[1].stage, "outer");
    }

    #[test]
    fn json_roundtrips_and_validates() {
        let _g = serial();
        enable(16);
        {
            let _s = scope("stage-j");
            record_with("t.json", 0, 2, 1, || grid(&[0.5, -1.25]));
            record_with("t.json", 1, 2, 1, || grid(&[0.5, 2.0]));
        }
        let cap = take();
        disable();
        let text = to_json(&cap);
        let doc = parse(&text).expect("frames JSON parses");
        let schema = parse(SCHEMA_JSON).expect("schema parses");
        let violations = validate(&doc, &schema);
        assert!(violations.is_empty(), "schema violations: {violations:?}");
        let decoded = decode_json(&doc).expect("decodes");
        assert_eq!(decoded, decode(&cap));
    }

    #[test]
    fn mismatched_grid_is_dropped() {
        let _g = serial();
        enable(16);
        {
            let _s = scope("stage-m");
            record_with("t.bad", 0, 3, 3, || grid(&[1.0]));
        }
        let cap = take();
        disable();
        assert!(cap.frames.is_empty());
        assert_eq!(cap.dropped_frames, 1);
    }
}
