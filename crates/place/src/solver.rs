//! Bound-to-bound quadratic wirelength model and conjugate-gradient solver.
//!
//! The B2B model (Spindler et al.) linearizes HPWL: per net and axis, the
//! extreme pins connect to each other and every interior pin connects to
//! both extremes, each two-pin edge weighted `w_e · 2 / ((p−1) · |x_i−x_j|)`
//! so the quadratic form's value equals the net's HPWL at the linearization
//! point. The resulting symmetric positive-definite system is solved with
//! Jacobi-preconditioned conjugate gradients.
//!
//! # Large-scale layout
//!
//! The system matrix is stored in flat CSR (`row_ptr`/`col_idx`/`val`)
//! rather than a jagged `Vec<Vec<_>>`: SpMV walks two contiguous arenas
//! with no per-row pointer chase, which is the difference between memory
//! bandwidth and cache-miss latency at 10⁵–10⁶ rows. The CG kernels write
//! into caller-owned [`CgScratch`] buffers so a full solve allocates
//! nothing, and [`B2bRebuilder`] caches per-net B2B pairs between outer
//! placement iterations, regenerating only nets whose pin coordinates
//! actually changed (bitwise) since the previous linearization.
//!
//! Everything is deterministic across thread counts: pair generation is
//! chunked over fixed net ranges and stitched in chunk order, SpMV is
//! row-parallel with unchanged per-row accumulation order, and dot
//! products use `cp-parallel`'s fixed-order tree reduction.

use crate::kernels::{self, dot};
use crate::problem::PlacementProblem;

/// Axis selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Horizontal (x).
    X,
    /// Vertical (y).
    Y,
}

/// Minimum pin separation for B2B weights, µm (avoids singular weights).
const MIN_DIST: f64 = 0.5;

/// Hyperedges per parallel chunk when generating B2B pairs.
const EDGE_CHUNK: usize = 512;
/// Vector elements per parallel chunk in CG kernels (shared with
/// [`crate::kernels`] so fused and unfused paths reduce identically).
const VEC_CHUNK: usize = kernels::VEC_CHUNK;

/// Off-diagonal count above which [`B2bSystem`] builds the cache-blocked
/// (column-striped) SpMV layout. The striped kernel changes within-row
/// accumulation order, so it is *deterministic* across thread counts but
/// not bitwise-equal to the row kernel; the threshold sits above every
/// bitwise-pinned workload (QoR-gate designs peak well under 10⁶ nnz) so
/// only genuinely large systems switch layouts.
pub const BLOCKED_SPMV_MIN_NNZ: usize = 1 << 22;

/// Columns per stripe in the blocked SpMV: 2¹⁶ f64 of `x` per stripe is
/// 512 KiB — sized to stay resident in L2 while a stripe's rows stream.
const COL_STRIPE: usize = 1 << 16;

/// Rows per parallel chunk inside one stripe of the blocked SpMV.
const STRIPE_ROW_CHUNK: usize = 1024;

/// One B2B two-pin edge: `(u, v, weight)` over global vertex ids.
type Pair = (u32, u32, f64);

/// Per-solve CG configuration.
///
/// The default (`precondition: false`, `fused: true`) is bit-identical to
/// the pre-refactor solver at every thread count: the fused kernels keep
/// per-element arithmetic order and chunk geometry (see [`crate::kernels`]).
/// `fused: false` selects the unfused pass sequence (kept for kernel-fusion
/// benchmarking); `precondition: true` swaps the implicit Jacobi
/// preconditioner for an IC(0) incomplete-Cholesky factorization — a
/// different (much faster-converging) iteration, deterministic but not
/// bitwise-comparable to the default path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgOptions {
    /// Use the IC(0) preconditioner instead of Jacobi.
    pub precondition: bool,
    /// Use the fused vector kernels (bitwise-equal to unfused).
    pub fused: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            precondition: false,
            fused: true,
        }
    }
}

/// Convergence facts from one CG solve, for the telemetry channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CgStats {
    /// CG iterations taken (0 when the start was already converged).
    pub iterations: usize,
    /// Final relative residual `‖r‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Feeds one solve's stats into the metrics registry (no-op below trace
/// level `Full`).
fn record_cg(stats: &CgStats) {
    if !cp_trace::telemetry_enabled() {
        return;
    }
    cp_trace::counter_add("place.cg.solves", 1);
    cp_trace::observe("place.cg.iterations", stats.iterations as f64);
    cp_trace::observe("place.cg.residual", stats.relative_residual);
}

/// Reusable CG work vectors (residual, preconditioned residual, search
/// direction, `A·p`). Hold one per axis across outer placement iterations
/// and the solve path stops allocating entirely.
#[derive(Debug, Clone, Default)]
pub struct CgScratch {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

/// A sparse SPD system `A x = b` over the movable objects of one axis,
/// stored in CSR form.
#[derive(Debug, Clone)]
pub struct B2bSystem {
    diag: Vec<f64>,
    /// `row_ptr[i]..row_ptr[i+1]` bounds row `i`'s off-diagonal entries.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    val: Vec<f64>,
    rhs: Vec<f64>,
    /// Cache-blocked SpMV layout, present only above
    /// [`BLOCKED_SPMV_MIN_NNZ`].
    striped: Option<StripedCsr>,
}

/// Column-striped copy of the off-diagonal CSR entries for cache-blocked
/// SpMV. Each stripe covers [`COL_STRIPE`] columns; within a stripe, the
/// touched rows are listed in ascending order with their entries in
/// original CSR order. A sweep processes stripes sequentially so the `x`
/// window a stripe reads stays L2-resident, with rows parallelized inside
/// each stripe.
#[derive(Debug, Clone, Default)]
struct StripedCsr {
    stripes: Vec<Stripe>,
}

#[derive(Debug, Clone, Default)]
struct Stripe {
    /// Ascending, unique row ids touched by this stripe.
    rows: Vec<u32>,
    /// `ptr[k]..ptr[k+1]` bounds row `rows[k]`'s entries in `col`/`val`.
    ptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f64>,
}

impl StripedCsr {
    fn build(n: usize, row_ptr: &[u32], col_idx: &[u32], val: &[f64]) -> Self {
        let nstripes = n.div_ceil(COL_STRIPE).max(1);
        let mut stripes = vec![Stripe::default(); nstripes];
        for i in 0..n {
            let row = row_ptr[i] as usize..row_ptr[i + 1] as usize;
            for (&j, &w) in col_idx[row.clone()].iter().zip(&val[row]) {
                let st = &mut stripes[j as usize / COL_STRIPE];
                if st.rows.last() != Some(&(i as u32)) {
                    st.rows.push(i as u32);
                    st.ptr.push(st.col.len() as u32);
                }
                st.col.push(j);
                st.val.push(w);
            }
        }
        for st in stripes.iter_mut() {
            st.ptr.push(st.col.len() as u32);
        }
        Self { stripes }
    }
}

/// Raw-pointer handle for disjoint-row writes from parallel chunks (same
/// pattern as `cp-parallel`'s chunk primitives).
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than direct field access) so closures capture the
    /// `Send + Sync` wrapper, not the raw pointer field.
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Anchor pseudo-nets: per-movable target position and weight.
#[derive(Debug, Clone, Copy)]
pub struct Anchors<'a> {
    /// Target coordinate per movable (this axis).
    pub target: &'a [f64],
    /// Pseudo-net weight per movable (0 disables).
    pub weight: &'a [f64],
}

/// Emits the B2B pairs of one net into `out`, reading this axis's
/// coordinates from the flat `coord` array (movables first, then fixed).
#[inline]
fn net_pairs(verts: &[u32], w_net: f64, coord: &[f64], out: &mut Vec<Pair>) {
    let p = verts.len();
    if p < 2 {
        return;
    }
    // Locate extreme pins on this axis.
    let (mut lo_i, mut hi_i) = (0usize, 0usize);
    for (i, &v) in verts.iter().enumerate() {
        if coord[v as usize] < coord[verts[lo_i] as usize] {
            lo_i = i;
        }
        if coord[v as usize] > coord[verts[hi_i] as usize] {
            hi_i = i;
        }
    }
    let scale = w_net * 2.0 / (p as f64 - 1.0);
    let b2b_w =
        |a: u32, b: u32| scale / (coord[a as usize] - coord[b as usize]).abs().max(MIN_DIST);
    let (lo, hi) = (verts[lo_i], verts[hi_i]);
    if lo != hi {
        out.push((lo, hi, b2b_w(lo, hi)));
    }
    for (i, &v) in verts.iter().enumerate() {
        if i == lo_i || i == hi_i {
            continue;
        }
        if v != lo {
            out.push((v, lo, b2b_w(v, lo)));
        }
        if v != hi {
            out.push((v, hi, b2b_w(v, hi)));
        }
    }
}

/// Incremental per-axis B2B assembler.
///
/// Holds the flat coordinate array, the per-net B2B pair arena and the
/// assembled [`B2bSystem`] across outer placement iterations. On each
/// [`B2bRebuilder::rebuild`] only nets with at least one pin whose
/// coordinate changed (bitwise) since the last call regenerate their
/// pairs; clean nets are copied from the cached arena, which makes the
/// rebuild cost proportional to how much actually moved. The assembled
/// system is bit-identical to a from-scratch [`B2bSystem::build`] at the
/// same positions, at any thread count.
#[derive(Debug, Clone)]
pub struct B2bRebuilder {
    axis: Axis,
    /// This axis's coordinate per global vertex (movables then fixed).
    coord: Vec<f64>,
    /// Coordinates at the previous pair generation (empty before the
    /// first rebuild).
    prev_coord: Vec<f64>,
    /// `pair_ptr[e]..pair_ptr[e+1]` bounds net `e`'s pairs in `pairs`.
    pair_ptr: Vec<u32>,
    pairs: Vec<Pair>,
    /// Back buffers swapped with `pairs`/`pair_ptr` each rebuild.
    pairs_back: Vec<Pair>,
    ptr_back: Vec<u32>,
    /// Per-row scratch: off-diagonal degree, then the CSR fill cursor.
    deg: Vec<u32>,
    sys: B2bSystem,
    built: bool,
}

impl B2bRebuilder {
    /// A rebuilder for one axis with empty caches; the first
    /// [`B2bRebuilder::rebuild`] regenerates every net.
    pub fn new(axis: Axis) -> Self {
        Self {
            axis,
            coord: Vec::new(),
            prev_coord: Vec::new(),
            pair_ptr: Vec::new(),
            pairs: Vec::new(),
            pairs_back: Vec::new(),
            ptr_back: Vec::new(),
            deg: Vec::new(),
            sys: B2bSystem {
                diag: Vec::new(),
                row_ptr: Vec::new(),
                col_idx: Vec::new(),
                val: Vec::new(),
                rhs: Vec::new(),
                striped: None,
            },
            built: false,
        }
    }

    /// The most recently assembled system.
    pub fn system(&self) -> &B2bSystem {
        &self.sys
    }

    /// Consumes the rebuilder, yielding the assembled system.
    pub fn into_system(self) -> B2bSystem {
        self.sys
    }

    /// (Re)builds the B2B system linearized at `positions`.
    ///
    /// Must be called with the same `problem` across a rebuilder's
    /// lifetime; a shape change falls back to a full regeneration.
    pub fn rebuild(
        &mut self,
        problem: &PlacementProblem,
        positions: &[(f64, f64)],
        anchors: Option<Anchors<'_>>,
    ) {
        let m = problem.movable_count();
        let nf = problem.fixed.len();
        let nets = problem.hypergraph.edge_count();
        let axis = self.axis;

        // Flat coordinates for this axis: movables from `positions`,
        // fixed from the problem. Branch-free lookup in the net kernel.
        self.coord.resize(m + nf, 0.0);
        match axis {
            Axis::X => {
                for (c, pos) in self.coord.iter_mut().zip(positions.iter().take(m)) {
                    *c = pos.0;
                }
                for (c, f) in self.coord[m..].iter_mut().zip(&problem.fixed) {
                    *c = f.0;
                }
            }
            Axis::Y => {
                for (c, pos) in self.coord.iter_mut().zip(positions.iter().take(m)) {
                    *c = pos.1;
                }
                for (c, f) in self.coord[m..].iter_mut().zip(&problem.fixed) {
                    *c = f.1;
                }
            }
        }

        // Pair generation: parallel over fixed net chunks. A net is dirty
        // iff any of its pins moved (bitwise) since the last rebuild;
        // dirty nets recompute, clean nets copy their cached pairs. Each
        // chunk emits pairs in per-net order and the chunks are stitched
        // in chunk order, which reproduces the serial build bit for bit.
        let full = !self.built
            || self.pair_ptr.len() != nets + 1
            || self.prev_coord.len() != self.coord.len();
        let coord = &self.coord;
        let prev = &self.prev_coord;
        let old_pairs = &self.pairs;
        let old_ptr = &self.pair_ptr;
        let chunks: Vec<(Vec<Pair>, Vec<u32>, u32)> =
            cp_parallel::par_map_ranges(nets, EDGE_CHUNK, |range| {
                let mut pairs: Vec<Pair> = Vec::new();
                let mut counts: Vec<u32> = Vec::with_capacity(range.len());
                let mut rebuilt = 0u32;
                for e in range {
                    let verts = problem.hypergraph.edge(e as u32);
                    let before = pairs.len();
                    let dirty = full
                        || verts
                            .iter()
                            .any(|&v| prev[v as usize].to_bits() != coord[v as usize].to_bits());
                    if dirty {
                        rebuilt += 1;
                        net_pairs(verts, problem.net_weights[e], coord, &mut pairs);
                    } else {
                        pairs.extend_from_slice(
                            &old_pairs[old_ptr[e] as usize..old_ptr[e + 1] as usize],
                        );
                    }
                    counts.push((pairs.len() - before) as u32);
                }
                (pairs, counts, rebuilt)
            });

        // Stitch the chunk outputs into the back arena, then swap.
        self.pairs_back.clear();
        self.ptr_back.clear();
        self.ptr_back.reserve(nets + 1);
        self.ptr_back.push(0);
        let mut acc = 0u32;
        let mut nets_rebuilt = 0u64;
        for (chunk_pairs, counts, rebuilt) in &chunks {
            self.pairs_back.extend_from_slice(chunk_pairs);
            nets_rebuilt += u64::from(*rebuilt);
            for &c in counts {
                acc += c;
                self.ptr_back.push(acc);
            }
        }
        assert!(
            self.pairs_back.len() < (u32::MAX / 2) as usize,
            "B2B pair count overflows the u32 arena index"
        );
        std::mem::swap(&mut self.pairs, &mut self.pairs_back);
        std::mem::swap(&mut self.pair_ptr, &mut self.ptr_back);
        if cp_trace::telemetry_enabled() {
            cp_trace::counter_add("place.b2b.nets_rebuilt", nets_rebuilt);
            cp_trace::counter_add(
                "place.b2b.nets_cached",
                (nets as u64).saturating_sub(nets_rebuilt),
            );
        }

        // CSR assembly from the pair arena, in arena (= net) order, with
        // the same four-case scatter the jagged build used: count
        // off-diagonal degrees, prefix-sum into `row_ptr`, then cursor-fill
        // `col_idx`/`val` while accumulating `diag`/`rhs` in pair order.
        let sys = &mut self.sys;
        sys.diag.clear();
        sys.diag.resize(m, 0.0);
        sys.rhs.clear();
        sys.rhs.resize(m, 0.0);
        self.deg.clear();
        self.deg.resize(m, 0);
        for &(u, v, _) in &self.pairs {
            if (u as usize) < m && (v as usize) < m {
                self.deg[u as usize] += 1;
                self.deg[v as usize] += 1;
            }
        }
        sys.row_ptr.clear();
        sys.row_ptr.reserve(m + 1);
        sys.row_ptr.push(0);
        let mut nnz = 0u32;
        for d in self.deg.iter_mut() {
            nnz += *d;
            sys.row_ptr.push(nnz);
            // Reuse `deg` as the fill cursor: start of each row.
            *d = nnz - *d;
        }
        sys.col_idx.clear();
        sys.col_idx.resize(nnz as usize, 0);
        sys.val.clear();
        sys.val.resize(nnz as usize, 0.0);
        for &(u, v, w) in &self.pairs {
            let (ui, vi) = (u as usize, v as usize);
            match (ui < m, vi < m) {
                (true, true) => {
                    sys.diag[ui] += w;
                    sys.diag[vi] += w;
                    let cu = self.deg[ui] as usize;
                    sys.col_idx[cu] = v;
                    sys.val[cu] = w;
                    self.deg[ui] += 1;
                    let cv = self.deg[vi] as usize;
                    sys.col_idx[cv] = u;
                    sys.val[cv] = w;
                    self.deg[vi] += 1;
                }
                (true, false) => {
                    sys.diag[ui] += w;
                    sys.rhs[ui] += w * self.coord[vi];
                }
                (false, true) => {
                    sys.diag[vi] += w;
                    sys.rhs[vi] += w * self.coord[ui];
                }
                (false, false) => {}
            }
        }
        if let Some(a) = anchors {
            for i in 0..m {
                let w = a.weight[i];
                if w > 0.0 {
                    sys.diag[i] += w;
                    sys.rhs[i] += w * a.target[i];
                }
            }
        }
        // Isolated objects stay where they are.
        for i in 0..m {
            if sys.diag[i] == 0.0 {
                sys.diag[i] = 1.0;
                sys.rhs[i] = self.coord[i];
            }
        }

        // The coords we just linearized at become the dirty-check baseline.
        std::mem::swap(&mut self.prev_coord, &mut self.coord);
        self.built = true;
        self.sys.finalize_layout();
    }
}

impl B2bSystem {
    /// Builds the B2B system for one axis, linearized at `positions`.
    ///
    /// One-shot wrapper over [`B2bRebuilder`]; callers that rebuild every
    /// outer iteration should hold a rebuilder instead and get the
    /// incremental path.
    pub fn build(
        problem: &PlacementProblem,
        positions: &[(f64, f64)],
        axis: Axis,
        anchors: Option<Anchors<'_>>,
    ) -> Self {
        let mut rb = B2bRebuilder::new(axis);
        rb.rebuild(problem, positions, anchors);
        rb.into_system()
    }

    /// Number of rows (movable objects).
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// True when the system has no rows.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Number of stored off-diagonal entries.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Solves with Jacobi-preconditioned CG from `x0`.
    ///
    /// The SpMV, dot products and vector updates run in parallel; dot
    /// products use fixed-order tree reductions and the element-wise
    /// kernels keep per-element arithmetic order, so the iterates are
    /// bit-identical for every thread count.
    pub fn solve(&self, x0: &[f64], max_iters: usize, tol: f64) -> Vec<f64> {
        self.solve_with_stats(x0, max_iters, tol).0
    }

    /// [`B2bSystem::solve`] plus the convergence stats the flow's
    /// telemetry channel reports per outer placement iteration.
    pub fn solve_with_stats(&self, x0: &[f64], max_iters: usize, tol: f64) -> (Vec<f64>, CgStats) {
        let mut x = x0.to_vec();
        let mut scratch = CgScratch::default();
        let stats = self.solve_into_with_stats(&mut x, &mut scratch, max_iters, tol);
        (x, stats)
    }

    /// Assembles a system directly from CSR parts (used by the eDensity
    /// backend's Poisson grid so it can reuse the CG kernels verbatim).
    /// `row_ptr`/`col_idx`/`val` hold the off-diagonal entries with the
    /// `apply` convention `(A x)_i = diag_i x_i − Σ_j val_ij x_j`.
    pub(crate) fn from_parts(
        diag: Vec<f64>,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        val: Vec<f64>,
        rhs: Vec<f64>,
    ) -> Self {
        let mut sys = Self {
            diag,
            row_ptr,
            col_idx,
            val,
            rhs,
            striped: None,
        };
        sys.finalize_layout();
        sys
    }

    /// Mutable right-hand side (the eDensity backend refreshes the charge
    /// vector on a fixed grid matrix each outer iteration).
    pub(crate) fn rhs_mut(&mut self) -> &mut [f64] {
        &mut self.rhs
    }

    /// (Re)derives the SpMV layout: builds the column-striped copy when
    /// the system is large enough to benefit, drops it otherwise.
    fn finalize_layout(&mut self) {
        self.striped = if self.val.len() >= BLOCKED_SPMV_MIN_NNZ {
            Some(StripedCsr::build(
                self.diag.len(),
                &self.row_ptr,
                &self.col_idx,
                &self.val,
            ))
        } else {
            None
        };
    }

    /// True when SpMV dispatches to the cache-blocked layout.
    pub fn is_blocked(&self) -> bool {
        self.striped.is_some()
    }

    /// In-place CG solve: `x` holds the start on entry and the solution on
    /// exit, and all work vectors live in `scratch` — zero allocations
    /// once the scratch has warmed up to the system size. Runs with
    /// default [`CgOptions`], i.e. bit-identical to the pre-refactor
    /// solver.
    pub fn solve_into_with_stats(
        &self,
        x: &mut [f64],
        scratch: &mut CgScratch,
        max_iters: usize,
        tol: f64,
    ) -> CgStats {
        self.solve_into_with_options(x, scratch, max_iters, tol, CgOptions::default())
    }

    /// [`B2bSystem::solve_into_with_stats`] with explicit [`CgOptions`].
    pub fn solve_into_with_options(
        &self,
        x: &mut [f64],
        scratch: &mut CgScratch,
        max_iters: usize,
        tol: f64,
        opts: CgOptions,
    ) -> CgStats {
        let stats = if opts.precondition {
            let ic = IcPreconditioner::new(self);
            self.solve_pcg(x, scratch, max_iters, tol, &ic)
        } else if opts.fused {
            self.solve_fused(x, scratch, max_iters, tol)
        } else {
            self.solve_unfused(x, scratch, max_iters, tol)
        };
        record_cg(&stats);
        stats
    }

    /// [`B2bSystem::solve_into_with_stats`] with a caller-held IC(0)
    /// factorization (so benchmarks can time factor and solve apart).
    pub fn solve_into_preconditioned(
        &self,
        x: &mut [f64],
        scratch: &mut CgScratch,
        max_iters: usize,
        tol: f64,
        ic: &IcPreconditioner,
    ) -> CgStats {
        let stats = self.solve_pcg(x, scratch, max_iters, tol, ic);
        record_cg(&stats);
        stats
    }

    /// The default CG loop on the fused kernels: same per-element
    /// arithmetic, order and reductions as [`B2bSystem::solve_unfused`],
    /// in fewer memory passes — bit-identical outputs.
    fn solve_fused(
        &self,
        x: &mut [f64],
        scratch: &mut CgScratch,
        max_iters: usize,
        tol: f64,
    ) -> CgStats {
        let n = self.diag.len();
        assert_eq!(x.len(), n, "start vector length != system size");
        let CgScratch { r, z, p, ap } = scratch;
        r.resize(n, 0.0);
        z.resize(n, 0.0);
        p.resize(n, 0.0);
        ap.resize(n, 0.0);
        self.apply_into(x, ap);
        let rr0 = kernels::sub_dot(r, &self.rhs, ap);
        let mut rz = kernels::jacobi_dot(z, r, &self.diag);
        p.copy_from_slice(z);
        let rhs_norm: f64 = dot(&self.rhs, &self.rhs).sqrt().max(1e-30);
        // Early exit on an already-converged starting point: warm-started
        // solves (incremental placement, successive-halving candidates)
        // often begin at the solution and would otherwise burn a full
        // SpMV + update sweep to move nowhere.
        let rel0 = rr0.sqrt() / rhs_norm;
        if rel0 < tol {
            return CgStats {
                iterations: 0,
                relative_residual: rel0,
            };
        }
        let mut iterations = 0;
        let mut relative_residual = rel0;
        for _ in 0..max_iters {
            self.apply_into(p, ap);
            let pap = dot(p, ap);
            if pap <= 0.0 || !pap.is_finite() {
                // Zero, negative or NaN curvature: the direction carries no
                // descent information; stop at the current iterate rather
                // than propagate garbage.
                break;
            }
            let alpha = rz / pap;
            if !alpha.is_finite() {
                break;
            }
            iterations += 1;
            let rr = kernels::fused_step(x, r, p, ap, alpha);
            relative_residual = rr.sqrt() / rhs_norm;
            if relative_residual < tol {
                break;
            }
            let rz_new = kernels::jacobi_dot(z, r, &self.diag);
            let beta = rz_new / rz;
            if !beta.is_finite() {
                break;
            }
            rz = rz_new;
            kernels::xpay(p, beta, z);
        }
        CgStats {
            iterations,
            relative_residual,
        }
    }

    /// The pre-refactor pass sequence: one memory sweep per vector op.
    /// Kept selectable (`CgOptions { fused: false, .. }`) so the
    /// kernel-fusion win stays measurable; outputs are bit-identical to
    /// [`B2bSystem::solve_fused`].
    fn solve_unfused(
        &self,
        x: &mut [f64],
        scratch: &mut CgScratch,
        max_iters: usize,
        tol: f64,
    ) -> CgStats {
        let n = self.diag.len();
        assert_eq!(x.len(), n, "start vector length != system size");
        let CgScratch { r, z, p, ap } = scratch;
        r.resize(n, 0.0);
        z.resize(n, 0.0);
        p.resize(n, 0.0);
        ap.resize(n, 0.0);
        self.apply_into(x, ap);
        cp_parallel::par_chunks_mut(r, VEC_CHUNK, |_, off, slice| {
            for (k, ri) in slice.iter_mut().enumerate() {
                *ri = self.rhs[off + k] - ap[off + k];
            }
        });
        cp_parallel::par_chunks_mut(z, VEC_CHUNK, |_, off, slice| {
            for (k, zi) in slice.iter_mut().enumerate() {
                *zi = r[off + k] / self.diag[off + k];
            }
        });
        p.copy_from_slice(z);
        let mut rz = dot(r, z);
        let rhs_norm: f64 = dot(&self.rhs, &self.rhs).sqrt().max(1e-30);
        let rel0 = dot(r, r).sqrt() / rhs_norm;
        if rel0 < tol {
            return CgStats {
                iterations: 0,
                relative_residual: rel0,
            };
        }
        let mut iterations = 0;
        let mut relative_residual = rel0;
        for _ in 0..max_iters {
            self.apply_into(p, ap);
            let pap = dot(p, ap);
            if pap <= 0.0 || !pap.is_finite() {
                break;
            }
            let alpha = rz / pap;
            if !alpha.is_finite() {
                break;
            }
            iterations += 1;
            kernels::axpy(x, alpha, p);
            kernels::axpy(r, -alpha, ap);
            let rnorm = dot(r, r).sqrt();
            relative_residual = rnorm / rhs_norm;
            if relative_residual < tol {
                break;
            }
            cp_parallel::par_chunks_mut(z, VEC_CHUNK, |_, off, slice| {
                for (k, zi) in slice.iter_mut().enumerate() {
                    *zi = r[off + k] / self.diag[off + k];
                }
            });
            let rz_new = dot(r, z);
            let beta = rz_new / rz;
            if !beta.is_finite() {
                break;
            }
            rz = rz_new;
            kernels::xpay(p, beta, z);
        }
        CgStats {
            iterations,
            relative_residual,
        }
    }

    /// Preconditioned CG with an explicit IC(0) factorization: identical
    /// loop shape to [`B2bSystem::solve_fused`] but `z = M⁻¹ r` comes
    /// from the triangular solves instead of a diagonal scale. The
    /// triangular solves are serial (and the rest fixed-order), so the
    /// iterates are bit-identical at every thread count.
    fn solve_pcg(
        &self,
        x: &mut [f64],
        scratch: &mut CgScratch,
        max_iters: usize,
        tol: f64,
        ic: &IcPreconditioner,
    ) -> CgStats {
        let n = self.diag.len();
        assert_eq!(x.len(), n, "start vector length != system size");
        let CgScratch { r, z, p, ap } = scratch;
        r.resize(n, 0.0);
        z.resize(n, 0.0);
        p.resize(n, 0.0);
        ap.resize(n, 0.0);
        self.apply_into(x, ap);
        let rr0 = kernels::sub_dot(r, &self.rhs, ap);
        ic.apply_to(r, z);
        let mut rz = dot(r, z);
        p.copy_from_slice(z);
        let rhs_norm: f64 = dot(&self.rhs, &self.rhs).sqrt().max(1e-30);
        let rel0 = rr0.sqrt() / rhs_norm;
        if rel0 < tol {
            return CgStats {
                iterations: 0,
                relative_residual: rel0,
            };
        }
        let mut iterations = 0;
        let mut relative_residual = rel0;
        for _ in 0..max_iters {
            self.apply_into(p, ap);
            let pap = dot(p, ap);
            if pap <= 0.0 || !pap.is_finite() {
                break;
            }
            let alpha = rz / pap;
            if !alpha.is_finite() {
                break;
            }
            iterations += 1;
            let rr = kernels::fused_step(x, r, p, ap, alpha);
            relative_residual = rr.sqrt() / rhs_norm;
            if relative_residual < tol {
                break;
            }
            ic.apply_to(r, z);
            let rz_new = dot(r, z);
            let beta = rz_new / rz;
            if !beta.is_finite() {
                break;
            }
            rz = rz_new;
            kernels::xpay(p, beta, z);
        }
        CgStats {
            iterations,
            relative_residual,
        }
    }

    /// Sparse matrix-vector product into `out`, dispatching to the
    /// cache-blocked layout when one was built (see
    /// [`BLOCKED_SPMV_MIN_NNZ`]).
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        match &self.striped {
            Some(s) => self.apply_striped_into(s, x, out),
            None => self.apply_rows_into(x, out),
        }
    }

    /// Row-parallel CSR kernel with unchanged per-row accumulation order,
    /// bit-identical to the serial loop at any thread count. Public so
    /// benchmarks can compare it against the blocked dispatch.
    pub fn apply_rows_into(&self, x: &[f64], out: &mut [f64]) {
        cp_parallel::par_chunks_mut(out, VEC_CHUNK, |_, off, slice| {
            for (k, oi) in slice.iter_mut().enumerate() {
                let i = off + k;
                let row = self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize;
                let mut acc = self.diag[i] * x[i];
                for (&j, &w) in self.col_idx[row.clone()].iter().zip(&self.val[row]) {
                    acc -= w * x[j as usize];
                }
                *oi = acc;
            }
        });
    }

    /// Cache-blocked SpMV: `out = diag∘x`, then per stripe subtract the
    /// stripe's partial row sums. Stripes run sequentially (each keeps a
    /// 512 KiB window of `x` hot); rows within a stripe run in fixed
    /// parallel chunks, and each (stripe, row) is owned by exactly one
    /// chunk — so the result is deterministic at every thread count,
    /// though within-row accumulation order differs from
    /// [`B2bSystem::apply_rows_into`].
    fn apply_striped_into(&self, striped: &StripedCsr, x: &[f64], out: &mut [f64]) {
        cp_parallel::par_chunks_mut(out, VEC_CHUNK, |_, off, slice| {
            for (k, oi) in slice.iter_mut().enumerate() {
                let i = off + k;
                *oi = self.diag[i] * x[i];
            }
        });
        let optr = SendPtr(out.as_mut_ptr());
        for st in &striped.stripes {
            cp_parallel::par_map_ranges(st.rows.len(), STRIPE_ROW_CHUNK, |range| {
                for k in range {
                    let seg = st.ptr[k] as usize..st.ptr[k + 1] as usize;
                    let mut acc = 0.0;
                    for (&j, &w) in st.col[seg.clone()].iter().zip(&st.val[seg]) {
                        acc += w * x[j as usize];
                    }
                    // SAFETY: `st.rows` is strictly ascending, so distinct
                    // `k` index distinct rows; the fixed chunking hands each
                    // `k` to exactly one closure invocation.
                    unsafe {
                        *optr.get().add(st.rows[k] as usize) -= acc;
                    }
                }
            });
        }
    }
}

/// Incomplete-Cholesky IC(0) preconditioner: `M = L Lᵀ` with `L` on the
/// sparsity pattern of the (coalesced) lower triangle of `A`.
///
/// B2B systems are symmetric M-matrices (positive diagonals, non-positive
/// off-diagonals, diagonally dominant), for which IC(0) exists without
/// breakdown; a pivot floor guards degenerate inputs anyway. Applying the
/// preconditioner is two serial triangular sweeps — trivially bitwise
/// thread-invariant — and costs one pass over `nnz/2` entries each, which
/// at B2B's ~4–6 nnz/row is comparable to a single SpMV.
///
/// Modified-IC (moving the dropped Schur fill onto the diagonal to
/// preserve row sums) was evaluated here and *increased* iteration counts
/// on B2B systems (39→45 at 100k vars on the solver bench), so the
/// factorization stays plain IC(0).
#[derive(Debug, Clone)]
pub struct IcPreconditioner {
    /// `L`'s diagonal.
    ldiag: Vec<f64>,
    /// Reciprocal of `L`'s diagonal: the triangular sweeps sit on a
    /// serial dependency chain, so a multiply beats a divide there.
    linv: Vec<f64>,
    /// Strict lower triangle of `L`, CSR by rows, columns ascending.
    lptr: Vec<u32>,
    lcol: Vec<u32>,
    lval: Vec<f64>,
    /// Transpose of the strict lower triangle (strict upper, CSR by rows)
    /// for the backward sweep.
    uptr: Vec<u32>,
    ucol: Vec<u32>,
    uval: Vec<f64>,
}

impl IcPreconditioner {
    /// Factors `sys`'s matrix. Serial and deterministic.
    pub fn new(sys: &B2bSystem) -> Self {
        let n = sys.diag.len();
        // 1. Gather the strict lower triangle with duplicate columns
        //    coalesced (the pair arena stores one CSR entry per B2B pair,
        //    so parallel edges appear multiple times). Off-diagonal values
        //    follow the apply convention A_ij = -val.
        let mut lptr: Vec<u32> = Vec::with_capacity(n + 1);
        let mut lcol: Vec<u32> = Vec::new();
        let mut lval: Vec<f64> = Vec::new();
        let mut row: Vec<(u32, f64)> = Vec::new();
        lptr.push(0);
        for i in 0..n {
            row.clear();
            let seg = sys.row_ptr[i] as usize..sys.row_ptr[i + 1] as usize;
            for (&j, &w) in sys.col_idx[seg.clone()].iter().zip(&sys.val[seg]) {
                if (j as usize) < i {
                    row.push((j, -w));
                }
            }
            row.sort_unstable_by_key(|&(j, _)| j);
            let mut k = 0;
            while k < row.len() {
                let (j, mut v) = row[k];
                k += 1;
                while k < row.len() && row[k].0 == j {
                    v += row[k].1;
                    k += 1;
                }
                lcol.push(j);
                lval.push(v);
            }
            lptr.push(lcol.len() as u32);
        }
        // 2. Up-looking IC(0) factorization, then the transpose for the
        //    backward sweep.
        let mut ldiag = vec![0.0; n];
        Self::factor(&sys.diag, &lptr, &lcol, &mut lval, &mut ldiag);
        let (uptr, ucol, uval) = Self::transpose(n, &lptr, &lcol, &lval);
        let linv: Vec<f64> = ldiag.iter().map(|&d| 1.0 / d).collect();
        Self {
            ldiag,
            linv,
            lptr,
            lcol,
            lval,
            uptr,
            ucol,
            uval,
        }
    }

    /// Up-looking factorization in place over `lval`:
    /// `L_ij = (A_ij − Σ_{k<j} L_ik·L_jk) / L_jj`, then
    /// `L_ii = √(A_ii − Σ_k L_ik²)`, with a pivot floor so degenerate
    /// rows cannot produce a zero or imaginary pivot.
    fn factor(diag: &[f64], lptr: &[u32], lcol: &[u32], lval: &mut [f64], ldiag: &mut [f64]) {
        for i in 0..diag.len() {
            let row_i = lptr[i] as usize..lptr[i + 1] as usize;
            for idx in row_i.clone() {
                let j = lcol[idx] as usize;
                let mut s = lval[idx];
                let (mut a, mut b) = (row_i.start, lptr[j] as usize);
                let b_end = lptr[j + 1] as usize;
                while a < idx && b < b_end {
                    match lcol[a].cmp(&lcol[b]) {
                        std::cmp::Ordering::Equal => {
                            s -= lval[a] * lval[b];
                            a += 1;
                            b += 1;
                        }
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                    }
                }
                lval[idx] = s / ldiag[j];
            }
            let mut d = diag[i];
            for idx in row_i {
                d -= lval[idx] * lval[idx];
            }
            ldiag[i] = d.max(diag[i] * 1e-8).max(1e-30).sqrt();
        }
    }

    /// Transposes the strict lower triangle (CSR by rows) into the strict
    /// upper triangle for the backward sweep. Scattering rows in ascending
    /// order keeps each upper row's columns ascending.
    #[allow(clippy::type_complexity)]
    fn transpose(
        n: usize,
        lptr: &[u32],
        lcol: &[u32],
        lval: &[f64],
    ) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        let nnz = lcol.len();
        let mut ucount = vec![0u32; n];
        for &j in lcol {
            ucount[j as usize] += 1;
        }
        let mut uptr: Vec<u32> = Vec::with_capacity(n + 1);
        uptr.push(0);
        let mut acc = 0u32;
        let mut cursor = vec![0u32; n];
        for (j, &c) in ucount.iter().enumerate() {
            cursor[j] = acc;
            acc += c;
            uptr.push(acc);
        }
        let mut ucol = vec![0u32; nnz];
        let mut uval = vec![0.0; nnz];
        for i in 0..n {
            for idx in lptr[i] as usize..lptr[i + 1] as usize {
                let j = lcol[idx] as usize;
                let at = cursor[j] as usize;
                ucol[at] = i as u32;
                uval[at] = lval[idx];
                cursor[j] += 1;
            }
        }
        (uptr, ucol, uval)
    }

    /// Applies `M⁻¹` in place: forward solve `L y = z` (ascending rows),
    /// then backward solve `Lᵀ z = y` (descending rows). Serial.
    pub fn apply_in_place(&self, z: &mut [f64]) {
        let n = self.ldiag.len();
        for i in 0..n {
            let seg = self.lptr[i] as usize..self.lptr[i + 1] as usize;
            let mut s = z[i];
            for (&j, &w) in self.lcol[seg.clone()].iter().zip(&self.lval[seg]) {
                s -= w * z[j as usize];
            }
            z[i] = s * self.linv[i];
        }
        self.backward(z);
    }

    /// Applies `M⁻¹` out of place: bitwise-identical to copying `src` into
    /// `dst` and calling [`Self::apply_in_place`], but the forward sweep
    /// reads `src` directly, saving one full vector pass per CG iteration.
    pub fn apply_to(&self, src: &[f64], dst: &mut [f64]) {
        let n = self.ldiag.len();
        assert_eq!(src.len(), n);
        assert_eq!(dst.len(), n);
        for i in 0..n {
            let seg = self.lptr[i] as usize..self.lptr[i + 1] as usize;
            let mut s = src[i];
            for (&j, &w) in self.lcol[seg.clone()].iter().zip(&self.lval[seg]) {
                s -= w * dst[j as usize];
            }
            dst[i] = s * self.linv[i];
        }
        self.backward(dst);
    }

    /// Backward solve `Lᵀ z = y` (descending rows), shared tail of the
    /// in-place and out-of-place applies.
    fn backward(&self, z: &mut [f64]) {
        let n = self.ldiag.len();
        for i in (0..n).rev() {
            let seg = self.uptr[i] as usize..self.uptr[i + 1] as usize;
            let mut s = z[i];
            for (&j, &w) in self.ucol[seg.clone()].iter().zip(&self.uval[seg]) {
                s -= w * z[j as usize];
            }
            z[i] = s * self.linv[i];
        }
    }
}

/// The pre-refactor jagged (`Vec<Vec<_>>`) B2B implementation, kept
/// verbatim as the bitwise oracle for the CSR kernels and the incremental
/// rebuild. Test-only; not compiled into the library.
#[cfg(test)]
pub(crate) mod jagged_oracle {
    use super::{Anchors, Axis, MIN_DIST, VEC_CHUNK};
    use crate::problem::PlacementProblem;

    const EDGE_CHUNK: usize = 512;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        cp_parallel::par_sum(a.len().min(b.len()), VEC_CHUNK, |r| {
            let mut s = 0.0;
            for i in r {
                s += a[i] * b[i];
            }
            s
        })
    }

    pub struct JaggedSystem {
        pub diag: Vec<f64>,
        pub off: Vec<Vec<(u32, f64)>>,
        pub rhs: Vec<f64>,
    }

    impl JaggedSystem {
        pub fn build(
            problem: &PlacementProblem,
            positions: &[(f64, f64)],
            axis: Axis,
            anchors: Option<Anchors<'_>>,
        ) -> Self {
            let m = problem.movable_count();
            let coord = |v: u32| -> f64 {
                let (x, y) = problem.vertex_pos(v, positions);
                match axis {
                    Axis::X => x,
                    Axis::Y => y,
                }
            };
            let mut sys = Self {
                diag: vec![0.0; m],
                off: vec![Vec::new(); m],
                rhs: vec![0.0; m],
            };
            let add_pair = |sys: &mut Self, u: u32, v: u32, w: f64| {
                let (u, v) = (u as usize, v as usize);
                match (u < m, v < m) {
                    (true, true) => {
                        sys.diag[u] += w;
                        sys.diag[v] += w;
                        sys.off[u].push((v as u32, w));
                        sys.off[v].push((u as u32, w));
                    }
                    (true, false) => {
                        sys.diag[u] += w;
                        sys.rhs[u] += w * coord(v as u32);
                    }
                    (false, true) => {
                        sys.diag[v] += w;
                        sys.rhs[v] += w * coord(u as u32);
                    }
                    (false, false) => {}
                }
            };
            let pair_chunks: Vec<Vec<(u32, u32, f64)>> =
                cp_parallel::par_map_ranges(problem.hypergraph.edge_count(), EDGE_CHUNK, |range| {
                    let mut pairs: Vec<(u32, u32, f64)> = Vec::new();
                    for e in range {
                        let verts = problem.hypergraph.edge(e as u32);
                        let p = verts.len();
                        if p < 2 {
                            continue;
                        }
                        let w_net = problem.net_weights[e];
                        let (mut lo_i, mut hi_i) = (0usize, 0usize);
                        for (i, &v) in verts.iter().enumerate() {
                            if coord(v) < coord(verts[lo_i]) {
                                lo_i = i;
                            }
                            if coord(v) > coord(verts[hi_i]) {
                                hi_i = i;
                            }
                        }
                        let scale = w_net * 2.0 / (p as f64 - 1.0);
                        let b2b_w =
                            |a: u32, b: u32| scale / (coord(a) - coord(b)).abs().max(MIN_DIST);
                        let (lo, hi) = (verts[lo_i], verts[hi_i]);
                        if lo != hi {
                            pairs.push((lo, hi, b2b_w(lo, hi)));
                        }
                        for (i, &v) in verts.iter().enumerate() {
                            if i == lo_i || i == hi_i {
                                continue;
                            }
                            if v != lo {
                                pairs.push((v, lo, b2b_w(v, lo)));
                            }
                            if v != hi {
                                pairs.push((v, hi, b2b_w(v, hi)));
                            }
                        }
                    }
                    pairs
                });
            for chunk in &pair_chunks {
                for &(u, v, w) in chunk {
                    add_pair(&mut sys, u, v, w);
                }
            }
            if let Some(a) = anchors {
                for i in 0..m {
                    let w = a.weight[i];
                    if w > 0.0 {
                        sys.diag[i] += w;
                        sys.rhs[i] += w * a.target[i];
                    }
                }
            }
            for (i, &(x, y)) in positions.iter().take(m).enumerate() {
                if sys.diag[i] == 0.0 {
                    sys.diag[i] = 1.0;
                    sys.rhs[i] = match axis {
                        Axis::X => x,
                        Axis::Y => y,
                    };
                }
            }
            sys
        }

        pub fn solve(&self, x0: &[f64], max_iters: usize, tol: f64) -> Vec<f64> {
            let n = self.diag.len();
            let mut x = x0.to_vec();
            let mut r = vec![0.0; n];
            let ax = self.apply(&x);
            cp_parallel::par_chunks_mut(&mut r, VEC_CHUNK, |_, off, slice| {
                for (k, ri) in slice.iter_mut().enumerate() {
                    *ri = self.rhs[off + k] - ax[off + k];
                }
            });
            let mut z = vec![0.0; n];
            cp_parallel::par_chunks_mut(&mut z, VEC_CHUNK, |_, off, slice| {
                for (k, zi) in slice.iter_mut().enumerate() {
                    *zi = r[off + k] / self.diag[off + k];
                }
            });
            let mut p = z.clone();
            let mut rz = dot(&r, &z);
            let rhs_norm: f64 = dot(&self.rhs, &self.rhs).sqrt().max(1e-30);
            let rel0 = dot(&r, &r).sqrt() / rhs_norm;
            if rel0 < tol {
                return x;
            }
            for _ in 0..max_iters {
                let ap = self.apply(&p);
                let pap = dot(&p, &ap);
                if pap <= 0.0 || !pap.is_finite() {
                    break;
                }
                let alpha = rz / pap;
                if !alpha.is_finite() {
                    break;
                }
                cp_parallel::par_chunks_mut(&mut x, VEC_CHUNK, |_, off, slice| {
                    for (k, xi) in slice.iter_mut().enumerate() {
                        *xi += alpha * p[off + k];
                    }
                });
                cp_parallel::par_chunks_mut(&mut r, VEC_CHUNK, |_, off, slice| {
                    for (k, ri) in slice.iter_mut().enumerate() {
                        *ri -= alpha * ap[off + k];
                    }
                });
                let rnorm = dot(&r, &r).sqrt();
                if rnorm / rhs_norm < tol {
                    break;
                }
                cp_parallel::par_chunks_mut(&mut z, VEC_CHUNK, |_, off, slice| {
                    for (k, zi) in slice.iter_mut().enumerate() {
                        *zi = r[off + k] / self.diag[off + k];
                    }
                });
                let rz_new = dot(&r, &z);
                let beta = rz_new / rz;
                if !beta.is_finite() {
                    break;
                }
                rz = rz_new;
                cp_parallel::par_chunks_mut(&mut p, VEC_CHUNK, |_, off, slice| {
                    for (k, pi) in slice.iter_mut().enumerate() {
                        *pi = z[off + k] + beta * *pi;
                    }
                });
            }
            x
        }

        pub fn apply(&self, x: &[f64]) -> Vec<f64> {
            let n = self.diag.len();
            let mut out = vec![0.0; n];
            cp_parallel::par_chunks_mut(&mut out, VEC_CHUNK, |_, off, slice| {
                for (k, oi) in slice.iter_mut().enumerate() {
                    let i = off + k;
                    let mut acc = self.diag[i] * x[i];
                    for &(j, w) in &self.off[i] {
                        acc -= w * x[j as usize];
                    }
                    *oi = acc;
                }
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;

    fn line_problem() -> PlacementProblem {
        // fixed(0,0) -- m0 -- m1 -- fixed(9,0); 2-pin nets.
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0,
                },
                Object {
                    width: 1.0,
                    height: 1.0,
                },
            ],
            fixed: vec![(0.0, 0.0), (9.0, 0.0)],
            hypergraph: Hypergraph::new(
                4,
                vec![(vec![2, 0], 1.0), (vec![0, 1], 1.0), (vec![1, 3], 1.0)],
            ),
            net_weights: vec![1.0, 1.0, 1.0],
            core: Rect::new(0.0, 0.0, 9.0, 9.0),
            region: vec![None, None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        }
    }

    fn assert_sys_bitwise_eq(a: &B2bSystem, b: &B2bSystem) {
        assert_eq!(a.row_ptr, b.row_ptr);
        assert_eq!(a.col_idx, b.col_idx);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.diag), bits(&b.diag));
        assert_eq!(bits(&a.val), bits(&b.val));
        assert_eq!(bits(&a.rhs), bits(&b.rhs));
    }

    fn assert_matches_oracle(
        p: &PlacementProblem,
        pos: &[(f64, f64)],
        axis: Axis,
        anchors: Option<Anchors<'_>>,
    ) {
        let csr = B2bSystem::build(p, pos, axis, anchors);
        let jag = jagged_oracle::JaggedSystem::build(p, pos, axis, anchors);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&csr.diag), bits(&jag.diag));
        assert_eq!(bits(&csr.rhs), bits(&jag.rhs));
        // Row contents and order: the CSR row must equal the jagged row.
        for i in 0..csr.len() {
            let row = csr.row_ptr[i] as usize..csr.row_ptr[i + 1] as usize;
            let csr_row: Vec<(u32, u64)> = csr.col_idx[row.clone()]
                .iter()
                .zip(&csr.val[row])
                .map(|(&j, &w)| (j, w.to_bits()))
                .collect();
            let jag_row: Vec<(u32, u64)> =
                jag.off[i].iter().map(|&(j, w)| (j, w.to_bits())).collect();
            assert_eq!(csr_row, jag_row, "row {i}");
        }
        // SpMV and full solves agree bit for bit.
        let m = p.movable_count();
        let x0: Vec<f64> = pos.iter().take(m).map(|&(x, _)| x * 0.75 + 0.1).collect();
        let mut ap = vec![0.0; m];
        csr.apply_into(&x0, &mut ap);
        assert_eq!(bits(&ap), bits(&jag.apply(&x0)));
        let solved = csr.solve(&x0, 60, 1e-9);
        assert_eq!(bits(&solved), bits(&jag.solve(&x0, 60, 1e-9)));
    }

    #[test]
    fn csr_matches_jagged_oracle_on_line() {
        let p = line_problem();
        assert_matches_oracle(&p, &[(20.0, 3.0), (30.0, -2.0)], Axis::X, None);
        assert_matches_oracle(&p, &[(20.0, 3.0), (30.0, -2.0)], Axis::Y, None);
        let targets = vec![1.0, 8.0];
        let weights = vec![0.5, 0.0];
        assert_matches_oracle(
            &p,
            &[(4.0, 1.0), (5.0, 2.0)],
            Axis::X,
            Some(Anchors {
                target: &targets,
                weight: &weights,
            }),
        );
    }

    #[test]
    fn incremental_rebuild_matches_fresh_build() {
        let p = line_problem();
        let mut rb = B2bRebuilder::new(Axis::X);
        let pos0 = vec![(20.0, 0.0), (30.0, 0.0)];
        rb.rebuild(&p, &pos0, None);
        assert_sys_bitwise_eq(rb.system(), &B2bSystem::build(&p, &pos0, Axis::X, None));
        // Move one cell: nets touching it regenerate, the rest come from
        // the cache — and the result must equal a from-scratch build.
        let pos1 = vec![(20.0, 0.0), (7.5, 0.0)];
        rb.rebuild(&p, &pos1, None);
        assert_sys_bitwise_eq(rb.system(), &B2bSystem::build(&p, &pos1, Axis::X, None));
        // No movement at all: fully cached rebuild, still identical.
        rb.rebuild(&p, &pos1, None);
        assert_sys_bitwise_eq(rb.system(), &B2bSystem::build(&p, &pos1, Axis::X, None));
    }

    #[test]
    fn solve_into_matches_allocating_solve() {
        let p = line_problem();
        let pos = vec![(20.0, 0.0), (30.0, 0.0)];
        let sys = B2bSystem::build(&p, &pos, Axis::X, None);
        let reference = sys.solve(&[20.0, 30.0], 100, 1e-10);
        let mut x = vec![20.0, 30.0];
        let mut scratch = CgScratch::default();
        sys.solve_into_with_stats(&mut x, &mut scratch, 100, 1e-10);
        // Re-using warm scratch must not change anything either.
        let mut x2 = vec![20.0, 30.0];
        sys.solve_into_with_stats(&mut x2, &mut scratch, 100, 1e-10);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&reference), bits(&x));
        assert_eq!(bits(&reference), bits(&x2));
    }

    #[test]
    fn pulls_stray_cells_into_the_hull() {
        // B2B reproduces HPWL, which is flat while movables stay between
        // their net extremes — so the meaningful invariant is that cells
        // starting *outside* the fixed hull converge into it and the
        // ordering along the chain is preserved.
        let p = line_problem();
        let mut pos = vec![(20.0, 0.0), (30.0, 0.0)];
        for _ in 0..30 {
            let sys = B2bSystem::build(&p, &pos, Axis::X, None);
            let x = sys.solve(&[pos[0].0, pos[1].0], 100, 1e-10);
            pos[0].0 = x[0];
            pos[1].0 = x[1];
        }
        assert!(pos[0].0 > -0.5 && pos[0].0 < 9.5, "{pos:?}");
        assert!(pos[1].0 > -0.5 && pos[1].0 < 9.5, "{pos:?}");
        assert!(pos[0].0 <= pos[1].0 + 1e-9, "{pos:?}");
    }

    #[test]
    fn converged_start_returns_unchanged() {
        // Solve to convergence, then re-solve from the solution: the
        // initial-residual check must return the start bit-for-bit without
        // taking a CG step.
        let p = line_problem();
        let pos = vec![(3.0, 0.0), (6.0, 0.0)];
        let sys = B2bSystem::build(&p, &pos, Axis::X, None);
        let solved = sys.solve(&[pos[0].0, pos[1].0], 200, 1e-12);
        let again = sys.solve(&solved, 200, 1e-12);
        assert_eq!(
            solved.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn heavier_net_wins() {
        // One movable between fixed pins at 0 and 9; the net to 9 carries
        // 10× the weight, so the linear HPWL objective is minimized at 9.
        let p = PlacementProblem {
            movable: vec![Object {
                width: 1.0,
                height: 1.0,
            }],
            fixed: vec![(0.0, 0.0), (9.0, 0.0)],
            hypergraph: Hypergraph::new(3, vec![(vec![0, 1], 1.0), (vec![0, 2], 1.0)]),
            net_weights: vec![1.0, 10.0],
            core: Rect::new(0.0, 0.0, 9.0, 9.0),
            region: vec![None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        };
        let mut pos = vec![(4.5, 0.0)];
        for _ in 0..40 {
            let sys = B2bSystem::build(&p, &pos, Axis::X, None);
            let x = sys.solve(&[pos[0].0], 100, 1e-10);
            pos[0].0 = x[0];
        }
        assert!(pos[0].0 > 7.5, "{pos:?}");
    }

    #[test]
    fn anchors_pull_toward_targets() {
        let p = line_problem();
        let pos = vec![(4.5, 0.0), (4.5, 0.0)];
        let targets = vec![1.0, 8.0];
        let weights = vec![100.0, 100.0]; // dominate the nets
        let sys = B2bSystem::build(
            &p,
            &pos,
            Axis::X,
            Some(Anchors {
                target: &targets,
                weight: &weights,
            }),
        );
        let x = sys.solve(&[4.5, 4.5], 200, 1e-12);
        assert!((x[0] - 1.0).abs() < 0.6, "{x:?}");
        assert!((x[1] - 8.0).abs() < 0.6, "{x:?}");
    }

    #[test]
    fn isolated_objects_stay_put() {
        let p = PlacementProblem {
            movable: vec![Object {
                width: 1.0,
                height: 1.0,
            }],
            fixed: vec![],
            hypergraph: Hypergraph::new(1, vec![]),
            net_weights: vec![],
            core: Rect::new(0.0, 0.0, 10.0, 10.0),
            region: vec![None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        };
        let pos = vec![(3.0, 7.0)];
        let sx = B2bSystem::build(&p, &pos, Axis::X, None).solve(&[3.0], 10, 1e-10);
        let sy = B2bSystem::build(&p, &pos, Axis::Y, None).solve(&[7.0], 10, 1e-10);
        assert!((sx[0] - 3.0).abs() < 1e-9);
        assert!((sy[0] - 7.0).abs() < 1e-9);
    }

    /// A chain of `m` movables between two fixed terminals — the worst
    /// case for Jacobi-CG (information crosses one link per iteration)
    /// and the shape the IC(0) factorization handles exactly.
    fn chain_problem(m: usize) -> PlacementProblem {
        let n = (m + 2) as u32;
        let mut edges: Vec<(Vec<u32>, f64)> = vec![(vec![m as u32, 0], 1.0)];
        for i in 0..m - 1 {
            edges.push((vec![i as u32, i as u32 + 1], 1.0));
        }
        edges.push((vec![m as u32 - 1, m as u32 + 1], 1.0));
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0,
                };
                m
            ],
            fixed: vec![(0.0, 0.0), (100.0, 0.0)],
            hypergraph: Hypergraph::new(n as usize, edges),
            net_weights: vec![1.0; m + 1],
            core: Rect::new(0.0, 0.0, 100.0, 100.0),
            region: vec![None; m],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        }
    }

    #[test]
    fn fused_and_unfused_solves_match_bitwise() {
        let p = chain_problem(40);
        let pos: Vec<(f64, f64)> = (0..40).map(|i| (50.0 + (i % 7) as f64, 0.0)).collect();
        let sys = B2bSystem::build(&p, &pos, Axis::X, None);
        let x0: Vec<f64> = pos.iter().map(|&(x, _)| x).collect();
        let run = |fused: bool| {
            let mut x = x0.clone();
            let mut scratch = CgScratch::default();
            let stats = sys.solve_into_with_options(
                &mut x,
                &mut scratch,
                60,
                1e-9,
                CgOptions {
                    precondition: false,
                    fused,
                },
            );
            (x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), stats)
        };
        let (xf, sf) = run(true);
        let (xu, su) = run(false);
        assert_eq!(xf, xu);
        assert_eq!(sf, su);
    }

    #[test]
    fn ic_preconditioner_converges_where_jacobi_stalls() {
        // On a 400-long chain, 30 Jacobi-CG iterations barely move the
        // residual; IC(0) factors the tridiagonal exactly and converges
        // in a handful of iterations.
        let m = 400;
        let p = chain_problem(m);
        let pos: Vec<(f64, f64)> = (0..m).map(|_| (50.0, 0.0)).collect();
        let sys = B2bSystem::build(&p, &pos, Axis::X, None);
        let x0 = vec![50.0; m];
        let mut scratch = CgScratch::default();
        let mut plain = x0.clone();
        let plain_stats =
            sys.solve_into_with_options(&mut plain, &mut scratch, 30, 1e-8, CgOptions::default());
        let mut pre = x0.clone();
        let pre_stats = sys.solve_into_with_options(
            &mut pre,
            &mut scratch,
            30,
            1e-8,
            CgOptions {
                precondition: true,
                fused: true,
            },
        );
        assert!(
            pre_stats.relative_residual < 1e-8,
            "IC(0) residual {}",
            pre_stats.relative_residual
        );
        assert!(
            pre_stats.relative_residual < plain_stats.relative_residual / 1e3,
            "IC(0) {} vs Jacobi {}",
            pre_stats.relative_residual,
            plain_stats.relative_residual
        );
        assert!(pre_stats.iterations < plain_stats.iterations);
    }

    #[test]
    fn preconditioned_solve_is_thread_count_invariant() {
        let m = 100;
        let p = chain_problem(m);
        let pos: Vec<(f64, f64)> = (0..m).map(|i| (1.0 + i as f64 * 0.2, 0.0)).collect();
        let sys = B2bSystem::build(&p, &pos, Axis::X, None);
        let run = |threads: usize| {
            cp_parallel::with_threads(threads, || {
                let mut x: Vec<f64> = pos.iter().map(|&(x, _)| x).collect();
                let mut scratch = CgScratch::default();
                sys.solve_into_with_options(
                    &mut x,
                    &mut scratch,
                    50,
                    1e-10,
                    CgOptions {
                        precondition: true,
                        fused: true,
                    },
                );
                x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            })
        };
        let t1 = run(1);
        assert_eq!(t1, run(4));
        assert_eq!(t1, run(8));
    }

    #[test]
    fn blocked_spmv_matches_row_kernel_and_is_deterministic() {
        // Force the striped layout on a small system (well below the nnz
        // threshold) and check it against the row kernel numerically, and
        // against itself across thread counts bitwise.
        let m = 300;
        let p = chain_problem(m);
        let pos: Vec<(f64, f64)> = (0..m).map(|i| ((i % 13) as f64 * 3.0, 0.0)).collect();
        let mut sys = B2bSystem::build(&p, &pos, Axis::X, None);
        assert!(!sys.is_blocked(), "below threshold");
        sys.striped = Some(StripedCsr::build(
            sys.diag.len(),
            &sys.row_ptr,
            &sys.col_idx,
            &sys.val,
        ));
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut rows = vec![0.0; m];
        sys.apply_rows_into(&x, &mut rows);
        let run = |threads: usize| {
            cp_parallel::with_threads(threads, || {
                let mut out = vec![0.0; m];
                sys.apply_into(&x, &mut out);
                out
            })
        };
        let blocked = run(1);
        for i in 0..m {
            let scale = rows[i].abs().max(1.0);
            assert!(
                (blocked[i] - rows[i]).abs() <= 1e-12 * scale,
                "row {i}: blocked {} vs rows {}",
                blocked[i],
                rows[i]
            );
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&blocked), bits(&run(4)));
        assert_eq!(bits(&blocked), bits(&run(8)));
    }

    #[test]
    fn y_axis_solve_pulls_into_hull() {
        let mut p = line_problem();
        p.fixed = vec![(0.0, 0.0), (0.0, 9.0)];
        let mut pos = vec![(0.0, -15.0), (0.0, 25.0)];
        for _ in 0..30 {
            let sys = B2bSystem::build(&p, &pos, Axis::Y, None);
            let y = sys.solve(&[pos[0].1, pos[1].1], 100, 1e-10);
            pos[0].1 = y[0];
            pos[1].1 = y[1];
        }
        assert!(pos[0].1 > -0.5 && pos[0].1 < 9.5, "{pos:?}");
        assert!(pos[1].1 > -0.5 && pos[1].1 < 9.5, "{pos:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;
    use proptest::prelude::*;

    /// A randomized placement problem plus start positions and a sparse
    /// perturbation (for the incremental-rebuild property).
    #[derive(Debug, Clone)]
    struct Case {
        problem: PlacementProblem,
        pos0: Vec<(f64, f64)>,
        pos1: Vec<(f64, f64)>,
        anchor_weight: f64,
    }

    fn case_strategy() -> impl Strategy<Value = Case> {
        (1usize..8, 0usize..4)
            .prop_flat_map(|(m, f)| {
                let n = (m + f) as u32;
                let nets =
                    prop::collection::vec((prop::collection::vec(0..n, 2..5), 0.25f64..4.0), 0..10);
                let coords = prop::collection::vec(
                    ((-8.0f64..8.0), (-8.0f64..8.0)),
                    m + f + m, // fixed tail + perturbation deltas
                );
                // Which movables move between pos0 and pos1 (sparse):
                // a uniform draw per movable, thresholded below.
                let moved = prop::collection::vec(0.0f64..1.0, m);
                (Just((m, f)), nets, coords, moved, 0.0f64..0.6)
            })
            .prop_map(|((m, f), nets, coords, moved, anchor_weight)| {
                let net_weights: Vec<f64> = nets.iter().map(|(_, w)| *w).collect();
                let edges: Vec<(Vec<u32>, f64)> = nets.into_iter().map(|(v, _)| (v, 1.0)).collect();
                let problem = PlacementProblem {
                    movable: vec![
                        Object {
                            width: 1.0,
                            height: 1.0,
                        };
                        m
                    ],
                    fixed: coords[m..m + f].to_vec(),
                    hypergraph: Hypergraph::new(m + f, edges),
                    net_weights,
                    core: Rect::new(-10.0, -10.0, 10.0, 10.0),
                    region: vec![None; m],
                    seed_positions: None,
                    blockages: Vec::new(),
                    density_target: 0.9,
                };
                let pos0: Vec<(f64, f64)> = coords[..m].to_vec();
                let pos1: Vec<(f64, f64)> = (0..m)
                    .map(|i| {
                        if moved[i] < 0.3 {
                            coords[m + f + i]
                        } else {
                            pos0[i]
                        }
                    })
                    .collect();
                Case {
                    problem,
                    pos0,
                    pos1,
                    anchor_weight,
                }
            })
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    type SysFingerprint = (Vec<u32>, Vec<u32>, Vec<u64>, Vec<u64>, Vec<u64>);

    fn sys_fingerprint(s: &B2bSystem) -> SysFingerprint {
        (
            s.row_ptr.clone(),
            s.col_idx.clone(),
            bits(&s.diag),
            bits(&s.val),
            bits(&s.rhs),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// CSR build + SpMV + solve are bitwise-identical to the
        /// pre-refactor jagged implementation.
        #[test]
        fn csr_matches_jagged_oracle(case in case_strategy()) {
            let m = case.problem.movable_count();
            let targets: Vec<f64> = (0..m).map(|i| i as f64 - 2.0).collect();
            let weights = vec![case.anchor_weight; m];
            let anchors = Anchors { target: &targets, weight: &weights };
            for axis in [Axis::X, Axis::Y] {
                for a in [None, Some(anchors)] {
                    let csr = B2bSystem::build(&case.problem, &case.pos0, axis, a);
                    let jag = jagged_oracle::JaggedSystem::build(
                        &case.problem, &case.pos0, axis, a,
                    );
                    prop_assert_eq!(bits(&csr.diag), bits(&jag.diag));
                    prop_assert_eq!(bits(&csr.rhs), bits(&jag.rhs));
                    let x0: Vec<f64> = case.pos0.iter()
                        .map(|&(x, y)| match axis { Axis::X => x, Axis::Y => y })
                        .collect();
                    let mut ap = vec![0.0; m];
                    csr.apply_into(&x0, &mut ap);
                    prop_assert_eq!(bits(&ap), bits(&jag.apply(&x0)));
                    let s_csr = csr.solve(&x0, 40, 1e-9);
                    let s_jag = jag.solve(&x0, 40, 1e-9);
                    prop_assert_eq!(bits(&s_csr), bits(&s_jag));
                }
            }
        }

        /// An incremental rebuild after a sparse perturbation equals a
        /// from-scratch build at the new positions, bit for bit.
        #[test]
        fn incremental_rebuild_matches_fresh(case in case_strategy()) {
            for axis in [Axis::X, Axis::Y] {
                let mut rb = B2bRebuilder::new(axis);
                rb.rebuild(&case.problem, &case.pos0, None);
                let fresh0 = B2bSystem::build(&case.problem, &case.pos0, axis, None);
                prop_assert_eq!(sys_fingerprint(rb.system()), sys_fingerprint(&fresh0));
                rb.rebuild(&case.problem, &case.pos1, None);
                let fresh1 = B2bSystem::build(&case.problem, &case.pos1, axis, None);
                prop_assert_eq!(sys_fingerprint(rb.system()), sys_fingerprint(&fresh1));
            }
        }

        /// Preconditioned (IC(0)) and plain (Jacobi) CG solve the same
        /// SPD system, so run to tight tolerance they converge to the
        /// same fixed point — different iteration paths, same answer.
        /// Anchors on every movable keep the system strictly positive
        /// definite (a movable pair connected only to each other would
        /// otherwise make it singular, where the fixed point is not
        /// unique).
        #[test]
        fn preconditioned_and_plain_cg_share_a_fixed_point(case in case_strategy()) {
            let m = case.problem.movable_count();
            let targets: Vec<f64> = (0..m).map(|i| i as f64 - 2.0).collect();
            let weights = vec![case.anchor_weight.max(0.05); m];
            let anchors = Some(Anchors { target: &targets, weight: &weights });
            for axis in [Axis::X, Axis::Y] {
                let sys = B2bSystem::build(&case.problem, &case.pos0, axis, anchors);
                let x0: Vec<f64> = case.pos0.iter()
                    .map(|&(x, y)| match axis { Axis::X => x, Axis::Y => y })
                    .collect();
                let mut scratch = CgScratch::default();
                let mut plain = x0.clone();
                sys.solve_into_with_options(
                    &mut plain, &mut scratch, 500, 1e-12, CgOptions::default(),
                );
                let mut pre = x0.clone();
                sys.solve_into_with_options(
                    &mut pre, &mut scratch, 500, 1e-12,
                    CgOptions { precondition: true, fused: true },
                );
                for i in 0..plain.len() {
                    let scale = plain[i].abs().max(1.0);
                    prop_assert!(
                        (plain[i] - pre[i]).abs() <= 1e-6 * scale,
                        "row {}: plain {} vs preconditioned {}",
                        i, plain[i], pre[i],
                    );
                }
            }
        }

        /// Build + solve are bitwise-invariant across 1/4/8 threads.
        #[test]
        fn thread_count_does_not_change_bits(case in case_strategy()) {
            let run = |threads: usize| {
                cp_parallel::with_threads(threads, || {
                    let mut rb = B2bRebuilder::new(Axis::X);
                    rb.rebuild(&case.problem, &case.pos0, None);
                    rb.rebuild(&case.problem, &case.pos1, None);
                    let fp = sys_fingerprint(rb.system());
                    let x0: Vec<f64> = case.pos1.iter().map(|&(x, _)| x).collect();
                    let mut x = x0.clone();
                    let mut scratch = CgScratch::default();
                    rb.system().solve_into_with_stats(&mut x, &mut scratch, 40, 1e-9);
                    (fp, bits(&x))
                })
            };
            let t1 = run(1);
            let t4 = run(4);
            let t8 = run(8);
            prop_assert_eq!(&t1, &t4);
            prop_assert_eq!(&t1, &t8);
        }
    }
}
