//! Bound-to-bound quadratic wirelength model and conjugate-gradient solver.
//!
//! The B2B model (Spindler et al.) linearizes HPWL: per net and axis, the
//! extreme pins connect to each other and every interior pin connects to
//! both extremes, each two-pin edge weighted `w_e · 2 / ((p−1) · |x_i−x_j|)`
//! so the quadratic form's value equals the net's HPWL at the linearization
//! point. The resulting symmetric positive-definite system is solved with
//! Jacobi-preconditioned conjugate gradients.

use crate::problem::PlacementProblem;

/// Axis selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Horizontal (x).
    X,
    /// Vertical (y).
    Y,
}

/// Minimum pin separation for B2B weights, µm (avoids singular weights).
const MIN_DIST: f64 = 0.5;

/// Hyperedges per parallel chunk when generating B2B pairs.
const EDGE_CHUNK: usize = 512;
/// Vector elements per parallel chunk in CG kernels.
const VEC_CHUNK: usize = 1024;

/// Deterministic parallel dot product (fixed chunks, fixed-order tree
/// reduction — see `cp-parallel`).
fn dot(a: &[f64], b: &[f64]) -> f64 {
    cp_parallel::par_sum(a.len().min(b.len()), VEC_CHUNK, |r| {
        let mut s = 0.0;
        for i in r {
            s += a[i] * b[i];
        }
        s
    })
}

/// Convergence facts from one CG solve, for the telemetry channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgStats {
    /// CG iterations taken (0 when the start was already converged).
    pub iterations: usize,
    /// Final relative residual `‖r‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Feeds one solve's stats into the metrics registry (no-op below trace
/// level `Full`).
fn record_cg(stats: &CgStats) {
    if !cp_trace::telemetry_enabled() {
        return;
    }
    cp_trace::counter_add("place.cg.solves", 1);
    cp_trace::observe("place.cg.iterations", stats.iterations as f64);
    cp_trace::observe("place.cg.residual", stats.relative_residual);
}

/// A sparse SPD system `A x = b` over the movable objects of one axis.
#[derive(Debug, Clone)]
pub struct B2bSystem {
    diag: Vec<f64>,
    off: Vec<Vec<(u32, f64)>>,
    rhs: Vec<f64>,
}

/// Anchor pseudo-nets: per-movable target position and weight.
#[derive(Debug, Clone, Copy)]
pub struct Anchors<'a> {
    /// Target coordinate per movable (this axis).
    pub target: &'a [f64],
    /// Pseudo-net weight per movable (0 disables).
    pub weight: &'a [f64],
}

impl B2bSystem {
    /// Builds the B2B system for one axis, linearized at `positions`.
    pub fn build(
        problem: &PlacementProblem,
        positions: &[(f64, f64)],
        axis: Axis,
        anchors: Option<Anchors<'_>>,
    ) -> Self {
        let m = problem.movable_count();
        let coord = |v: u32| -> f64 {
            let (x, y) = problem.vertex_pos(v, positions);
            match axis {
                Axis::X => x,
                Axis::Y => y,
            }
        };
        let mut sys = Self {
            diag: vec![0.0; m],
            off: vec![Vec::new(); m],
            rhs: vec![0.0; m],
        };
        let add_pair = |sys: &mut Self, u: u32, v: u32, w: f64| {
            let (u, v) = (u as usize, v as usize);
            match (u < m, v < m) {
                (true, true) => {
                    sys.diag[u] += w;
                    sys.diag[v] += w;
                    sys.off[u].push((v as u32, w));
                    sys.off[v].push((u as u32, w));
                }
                (true, false) => {
                    sys.diag[u] += w;
                    sys.rhs[u] += w * coord(v as u32);
                }
                (false, true) => {
                    sys.diag[v] += w;
                    sys.rhs[v] += w * coord(u as u32);
                }
                (false, false) => {}
            }
        };
        // Pair generation (extreme-pin search + weight computation) is the
        // expensive half of the build and is independent per net, so it
        // runs in parallel over fixed net chunks; each chunk emits its
        // pairs in the original per-net order and the chunks are scattered
        // into the system sequentially in chunk order, which reproduces
        // the serial build bit for bit.
        let pair_chunks: Vec<Vec<(u32, u32, f64)>> =
            cp_parallel::par_map_ranges(problem.hypergraph.edge_count(), EDGE_CHUNK, |range| {
                let mut pairs: Vec<(u32, u32, f64)> = Vec::new();
                for e in range {
                    let verts = problem.hypergraph.edge(e as u32);
                    let p = verts.len();
                    if p < 2 {
                        continue;
                    }
                    let w_net = problem.net_weights[e];
                    // Locate extreme pins on this axis.
                    let (mut lo_i, mut hi_i) = (0usize, 0usize);
                    for (i, &v) in verts.iter().enumerate() {
                        if coord(v) < coord(verts[lo_i]) {
                            lo_i = i;
                        }
                        if coord(v) > coord(verts[hi_i]) {
                            hi_i = i;
                        }
                    }
                    let scale = w_net * 2.0 / (p as f64 - 1.0);
                    let b2b_w = |a: u32, b: u32| scale / (coord(a) - coord(b)).abs().max(MIN_DIST);
                    let (lo, hi) = (verts[lo_i], verts[hi_i]);
                    if lo != hi {
                        pairs.push((lo, hi, b2b_w(lo, hi)));
                    }
                    for (i, &v) in verts.iter().enumerate() {
                        if i == lo_i || i == hi_i {
                            continue;
                        }
                        if v != lo {
                            pairs.push((v, lo, b2b_w(v, lo)));
                        }
                        if v != hi {
                            pairs.push((v, hi, b2b_w(v, hi)));
                        }
                    }
                }
                pairs
            });
        for chunk in &pair_chunks {
            for &(u, v, w) in chunk {
                add_pair(&mut sys, u, v, w);
            }
        }
        if let Some(a) = anchors {
            for i in 0..m {
                let w = a.weight[i];
                if w > 0.0 {
                    sys.diag[i] += w;
                    sys.rhs[i] += w * a.target[i];
                }
            }
        }
        // Isolated objects stay where they are.
        for (i, &(x, y)) in positions.iter().take(m).enumerate() {
            if sys.diag[i] == 0.0 {
                sys.diag[i] = 1.0;
                sys.rhs[i] = match axis {
                    Axis::X => x,
                    Axis::Y => y,
                };
            }
        }
        sys
    }

    /// Solves with Jacobi-preconditioned CG from `x0`.
    ///
    /// The SpMV, dot products and vector updates run in parallel; dot
    /// products use fixed-order tree reductions and the element-wise
    /// kernels keep per-element arithmetic order, so the iterates are
    /// bit-identical for every thread count.
    pub fn solve(&self, x0: &[f64], max_iters: usize, tol: f64) -> Vec<f64> {
        self.solve_with_stats(x0, max_iters, tol).0
    }

    /// [`B2bSystem::solve`] plus the convergence stats the flow's
    /// telemetry channel reports per outer placement iteration.
    pub fn solve_with_stats(&self, x0: &[f64], max_iters: usize, tol: f64) -> (Vec<f64>, CgStats) {
        let (x, stats) = self.solve_inner(x0, max_iters, tol);
        record_cg(&stats);
        (x, stats)
    }

    fn solve_inner(&self, x0: &[f64], max_iters: usize, tol: f64) -> (Vec<f64>, CgStats) {
        let n = self.diag.len();
        let mut x = x0.to_vec();
        let mut r = vec![0.0; n];
        let ax = self.apply(&x);
        cp_parallel::par_chunks_mut(&mut r, VEC_CHUNK, |_, off, slice| {
            for (k, ri) in slice.iter_mut().enumerate() {
                *ri = self.rhs[off + k] - ax[off + k];
            }
        });
        let mut z = vec![0.0; n];
        cp_parallel::par_chunks_mut(&mut z, VEC_CHUNK, |_, off, slice| {
            for (k, zi) in slice.iter_mut().enumerate() {
                *zi = r[off + k] / self.diag[off + k];
            }
        });
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        let rhs_norm: f64 = dot(&self.rhs, &self.rhs).sqrt().max(1e-30);
        // Early exit on an already-converged starting point: warm-started
        // solves (incremental placement, successive-halving candidates)
        // often begin at the solution and would otherwise burn a full
        // SpMV + update sweep to move nowhere.
        let rel0 = dot(&r, &r).sqrt() / rhs_norm;
        if rel0 < tol {
            return (
                x,
                CgStats {
                    iterations: 0,
                    relative_residual: rel0,
                },
            );
        }
        let mut iterations = 0;
        let mut relative_residual = rel0;
        for _ in 0..max_iters {
            let ap = self.apply(&p);
            let pap = dot(&p, &ap);
            if pap <= 0.0 || !pap.is_finite() {
                // Zero, negative or NaN curvature: the direction carries no
                // descent information; stop at the current iterate rather
                // than propagate garbage.
                break;
            }
            let alpha = rz / pap;
            if !alpha.is_finite() {
                break;
            }
            iterations += 1;
            cp_parallel::par_chunks_mut(&mut x, VEC_CHUNK, |_, off, slice| {
                for (k, xi) in slice.iter_mut().enumerate() {
                    *xi += alpha * p[off + k];
                }
            });
            cp_parallel::par_chunks_mut(&mut r, VEC_CHUNK, |_, off, slice| {
                for (k, ri) in slice.iter_mut().enumerate() {
                    *ri -= alpha * ap[off + k];
                }
            });
            let rnorm = dot(&r, &r).sqrt();
            relative_residual = rnorm / rhs_norm;
            if relative_residual < tol {
                break;
            }
            cp_parallel::par_chunks_mut(&mut z, VEC_CHUNK, |_, off, slice| {
                for (k, zi) in slice.iter_mut().enumerate() {
                    *zi = r[off + k] / self.diag[off + k];
                }
            });
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            if !beta.is_finite() {
                break;
            }
            rz = rz_new;
            cp_parallel::par_chunks_mut(&mut p, VEC_CHUNK, |_, off, slice| {
                for (k, pi) in slice.iter_mut().enumerate() {
                    *pi = z[off + k] + beta * *pi;
                }
            });
        }
        (
            x,
            CgStats {
                iterations,
                relative_residual,
            },
        )
    }

    /// Sparse matrix-vector product. Row-parallel with unchanged per-row
    /// accumulation order, so the output is bit-identical to the serial
    /// loop at any thread count.
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.diag.len();
        let mut out = vec![0.0; n];
        cp_parallel::par_chunks_mut(&mut out, VEC_CHUNK, |_, off, slice| {
            for (k, oi) in slice.iter_mut().enumerate() {
                let i = off + k;
                let mut acc = self.diag[i] * x[i];
                for &(j, w) in &self.off[i] {
                    acc -= w * x[j as usize];
                }
                *oi = acc;
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;

    fn line_problem() -> PlacementProblem {
        // fixed(0,0) -- m0 -- m1 -- fixed(9,0); 2-pin nets.
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0,
                },
                Object {
                    width: 1.0,
                    height: 1.0,
                },
            ],
            fixed: vec![(0.0, 0.0), (9.0, 0.0)],
            hypergraph: Hypergraph::new(
                4,
                vec![(vec![2, 0], 1.0), (vec![0, 1], 1.0), (vec![1, 3], 1.0)],
            ),
            net_weights: vec![1.0, 1.0, 1.0],
            core: Rect::new(0.0, 0.0, 9.0, 9.0),
            region: vec![None, None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        }
    }

    #[test]
    fn pulls_stray_cells_into_the_hull() {
        // B2B reproduces HPWL, which is flat while movables stay between
        // their net extremes — so the meaningful invariant is that cells
        // starting *outside* the fixed hull converge into it and the
        // ordering along the chain is preserved.
        let p = line_problem();
        let mut pos = vec![(20.0, 0.0), (30.0, 0.0)];
        for _ in 0..30 {
            let sys = B2bSystem::build(&p, &pos, Axis::X, None);
            let x = sys.solve(&[pos[0].0, pos[1].0], 100, 1e-10);
            pos[0].0 = x[0];
            pos[1].0 = x[1];
        }
        assert!(pos[0].0 > -0.5 && pos[0].0 < 9.5, "{pos:?}");
        assert!(pos[1].0 > -0.5 && pos[1].0 < 9.5, "{pos:?}");
        assert!(pos[0].0 <= pos[1].0 + 1e-9, "{pos:?}");
    }

    #[test]
    fn converged_start_returns_unchanged() {
        // Solve to convergence, then re-solve from the solution: the
        // initial-residual check must return the start bit-for-bit without
        // taking a CG step.
        let p = line_problem();
        let pos = vec![(3.0, 0.0), (6.0, 0.0)];
        let sys = B2bSystem::build(&p, &pos, Axis::X, None);
        let solved = sys.solve(&[pos[0].0, pos[1].0], 200, 1e-12);
        let again = sys.solve(&solved, 200, 1e-12);
        assert_eq!(
            solved.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn heavier_net_wins() {
        // One movable between fixed pins at 0 and 9; the net to 9 carries
        // 10× the weight, so the linear HPWL objective is minimized at 9.
        let p = PlacementProblem {
            movable: vec![Object {
                width: 1.0,
                height: 1.0,
            }],
            fixed: vec![(0.0, 0.0), (9.0, 0.0)],
            hypergraph: Hypergraph::new(3, vec![(vec![0, 1], 1.0), (vec![0, 2], 1.0)]),
            net_weights: vec![1.0, 10.0],
            core: Rect::new(0.0, 0.0, 9.0, 9.0),
            region: vec![None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        };
        let mut pos = vec![(4.5, 0.0)];
        for _ in 0..40 {
            let sys = B2bSystem::build(&p, &pos, Axis::X, None);
            let x = sys.solve(&[pos[0].0], 100, 1e-10);
            pos[0].0 = x[0];
        }
        assert!(pos[0].0 > 7.5, "{pos:?}");
    }

    #[test]
    fn anchors_pull_toward_targets() {
        let p = line_problem();
        let pos = vec![(4.5, 0.0), (4.5, 0.0)];
        let targets = vec![1.0, 8.0];
        let weights = vec![100.0, 100.0]; // dominate the nets
        let sys = B2bSystem::build(
            &p,
            &pos,
            Axis::X,
            Some(Anchors {
                target: &targets,
                weight: &weights,
            }),
        );
        let x = sys.solve(&[4.5, 4.5], 200, 1e-12);
        assert!((x[0] - 1.0).abs() < 0.6, "{x:?}");
        assert!((x[1] - 8.0).abs() < 0.6, "{x:?}");
    }

    #[test]
    fn isolated_objects_stay_put() {
        let p = PlacementProblem {
            movable: vec![Object {
                width: 1.0,
                height: 1.0,
            }],
            fixed: vec![],
            hypergraph: Hypergraph::new(1, vec![]),
            net_weights: vec![],
            core: Rect::new(0.0, 0.0, 10.0, 10.0),
            region: vec![None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        };
        let pos = vec![(3.0, 7.0)];
        let sx = B2bSystem::build(&p, &pos, Axis::X, None).solve(&[3.0], 10, 1e-10);
        let sy = B2bSystem::build(&p, &pos, Axis::Y, None).solve(&[7.0], 10, 1e-10);
        assert!((sx[0] - 3.0).abs() < 1e-9);
        assert!((sy[0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn y_axis_solve_pulls_into_hull() {
        let mut p = line_problem();
        p.fixed = vec![(0.0, 0.0), (0.0, 9.0)];
        let mut pos = vec![(0.0, -15.0), (0.0, 25.0)];
        for _ in 0..30 {
            let sys = B2bSystem::build(&p, &pos, Axis::Y, None);
            let y = sys.solve(&[pos[0].1, pos[1].1], 100, 1e-10);
            pos[0].1 = y[0];
            pos[1].1 = y[1];
        }
        assert!(pos[0].1 > -0.5 && pos[0].1 < 9.5, "{pos:?}");
        assert!(pos[1].1 > -0.5 && pos[1].1 < 9.5, "{pos:?}");
    }
}
