//! Arena-backed structure-of-arrays views over a placement problem.
//!
//! [`PlacementProblem`] keeps its public array-of-structs shape
//! (`Vec<Object>`, `Vec<(f64, f64)>`) because the whole flow constructs
//! it, but the per-iteration kernels want flat per-field arrays: the
//! spreading bisection and density scatter read only cell *areas*, and
//! the HPWL / B2B kernels read only one axis's *coordinate* per vertex.
//! These views materialize exactly those arrays once, so the hot loops
//! index contiguous `f64` arenas instead of chasing struct fields or
//! branching between movable and fixed storage.
//!
//! Every kernel that accepts a view is bit-identical to its
//! problem-walking counterpart — the arrays hold the same values in the
//! same order, only the memory layout changes.

use crate::problem::PlacementProblem;

/// Per-movable scalar state, one contiguous array per field.
///
/// Build it once per placement run and hand it to the `_soa` kernel
/// variants ([`crate::spreading::spread_soa`],
/// [`crate::spreading::density_overflow_soa`]).
#[derive(Debug, Clone)]
pub struct PlacementSoa {
    /// Footprint area per movable (`width · height`, in problem order).
    pub area: Vec<f64>,
    /// Sum of `area` in index order — equals
    /// [`PlacementProblem::movable_area`] bit for bit.
    pub total_area: f64,
}

impl PlacementSoa {
    /// Extracts the per-movable arrays from `problem`.
    pub fn from_problem(problem: &PlacementProblem) -> Self {
        let area: Vec<f64> = problem.movable.iter().map(|o| o.area()).collect();
        let total_area = area.iter().sum();
        Self { area, total_area }
    }
}

/// Flat per-axis coordinates over *all* hypergraph vertices (movables
/// first, fixed terminals after), so net kernels index `xs[v]`/`ys[v]`
/// directly instead of branching through
/// [`PlacementProblem::vertex_pos`].
///
/// The fixed tail is filled once at construction; refresh the movable
/// prefix with [`VertexCoords::set_movable`] each iteration (no
/// allocation).
#[derive(Debug, Clone)]
pub struct VertexCoords {
    xs: Vec<f64>,
    ys: Vec<f64>,
    movable: usize,
}

impl VertexCoords {
    /// A coordinate arena sized for `problem`, fixed tail filled, movable
    /// prefix zeroed.
    pub fn new(problem: &PlacementProblem) -> Self {
        let m = problem.movable_count();
        let n = m + problem.fixed.len();
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        for (k, &(x, y)) in problem.fixed.iter().enumerate() {
            xs[m + k] = x;
            ys[m + k] = y;
        }
        Self { xs, ys, movable: m }
    }

    /// Copies the movable positions into the arena prefix.
    ///
    /// # Panics
    ///
    /// Panics if `positions` has fewer entries than the movable count.
    pub fn set_movable(&mut self, positions: &[(f64, f64)]) {
        for (i, &(x, y)) in positions.iter().take(self.movable).enumerate() {
            self.xs[i] = x;
            self.ys[i] = y;
        }
        assert!(
            positions.len() >= self.movable,
            "positions shorter than movable count"
        );
    }

    /// X coordinate per vertex (movables then fixed).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Y coordinate per vertex (movables then fixed).
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;

    fn toy() -> PlacementProblem {
        PlacementProblem {
            movable: vec![
                Object {
                    width: 2.0,
                    height: 3.0,
                },
                Object {
                    width: 1.0,
                    height: 1.5,
                },
            ],
            fixed: vec![(10.0, 4.0)],
            hypergraph: Hypergraph::new(3, vec![(vec![0, 1, 2], 1.0)]),
            net_weights: vec![1.0],
            core: Rect::new(0.0, 0.0, 10.0, 10.0),
            region: vec![None, None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        }
    }

    #[test]
    fn areas_match_problem() {
        let p = toy();
        let soa = PlacementSoa::from_problem(&p);
        assert_eq!(soa.area, vec![6.0, 1.5]);
        assert_eq!(soa.total_area.to_bits(), p.movable_area().to_bits());
    }

    #[test]
    fn coords_cover_movable_and_fixed() {
        let p = toy();
        let mut vc = VertexCoords::new(&p);
        vc.set_movable(&[(1.0, 2.0), (3.0, 4.5)]);
        assert_eq!(vc.xs(), &[1.0, 3.0, 10.0]);
        assert_eq!(vc.ys(), &[2.0, 4.5, 4.0]);
        // Refresh overwrites in place.
        vc.set_movable(&[(5.0, 6.0), (7.0, 8.0)]);
        assert_eq!(vc.xs(), &[5.0, 7.0, 10.0]);
    }
}
