//! Look-ahead spreading by recursive bisection (SimPL-style upper bound).
//!
//! Given overlap-heavy lower-bound positions, this pass recursively splits
//! the core into two halves and partitions the cells by coordinate so each
//! half receives cell area proportional to its capacity, terminating in
//! small regions where cells are mapped linearly. The result respects the
//! density target at bin granularity while roughly preserving relative
//! order — exactly what anchor pseudo-nets need.

use crate::problem::PlacementProblem;
use crate::soa::PlacementSoa;
use cp_netlist::floorplan::Rect;

/// Cells per leaf region before direct mapping.
const LEAF_CELLS: usize = 10;
/// Minimum region extent, µm.
const MIN_EXTENT: f64 = 2.0;
/// Cells per parallel chunk in the density scatter.
const CELL_CHUNK: usize = 4096;
/// Bins per parallel chunk in the overflow reduction.
const BIN_CHUNK: usize = 256;

/// Spreads `positions` to meet the problem's density target.
///
/// Returns one position per movable, inside the core. Convenience
/// wrapper over [`spread_soa`] that extracts the area array on the fly;
/// per-iteration callers should hold a [`PlacementSoa`] and call the SoA
/// variant directly.
pub fn spread(problem: &PlacementProblem, positions: &[(f64, f64)]) -> Vec<(f64, f64)> {
    spread_soa(problem, &PlacementSoa::from_problem(problem), positions)
}

/// [`spread`] over a prebuilt [`PlacementSoa`]: the bisection reads cell
/// areas from the contiguous arena instead of the object structs.
/// Bit-identical to [`spread`].
pub fn spread_soa(
    problem: &PlacementProblem,
    soa: &PlacementSoa,
    positions: &[(f64, f64)],
) -> Vec<(f64, f64)> {
    let m = problem.movable_count();
    let mut out = positions.to_vec();
    if m == 0 {
        return out;
    }
    // Spreading runs once per outer placer iteration — including inside
    // every V-P&R candidate evaluation — so its span is gated to `Full`
    // to keep the spans-only overhead budget for the coarse stages.
    let _span = cp_trace::telemetry_enabled().then(|| cp_trace::span("place.spread"));
    let items: Vec<usize> = (0..m).collect();
    rec(problem, &soa.area, problem.core, items, positions, &mut out);
    // Honor region constraints, core bounds and blockages.
    for (i, p) in out.iter_mut().enumerate() {
        let r = problem.region[i].unwrap_or(problem.core);
        *p = r.clamp(p.0, p.1);
        *p = problem.evict_from_blockages(p.0, p.1);
    }
    out
}

fn rec(
    problem: &PlacementProblem,
    areas: &[f64],
    region: Rect,
    mut items: Vec<usize>,
    positions: &[(f64, f64)],
    out: &mut [(f64, f64)],
) {
    if items.len() <= LEAF_CELLS || region.width() <= MIN_EXTENT || region.height() <= MIN_EXTENT {
        map_into(region, &items, positions, out);
        return;
    }
    // Split along the longer side.
    let horizontal = region.width() >= region.height();
    let coord = |i: usize| {
        if horizontal {
            positions[i].0
        } else {
            positions[i].1
        }
    };
    items.sort_by(|&a, &b| coord(a).total_cmp(&coord(b)));
    let total_area: f64 = items.iter().map(|&i| areas[i]).sum();
    // Split the cell list in proportion to the halves' free capacities
    // (equal halves on an unobstructed core; blockage-aware otherwise).
    let half_frac = {
        let (h1, h2) = halves(region);
        let c1 = problem.free_area_in(&h1);
        let c2 = problem.free_area_in(&h2);
        if c1 + c2 <= 0.0 {
            0.5
        } else {
            c1 / (c1 + c2)
        }
    };
    let mut acc = 0.0;
    let mut split = items.len();
    for (k, &i) in items.iter().enumerate() {
        acc += areas[i];
        if acc >= total_area * half_frac {
            split = k + 1;
            break;
        }
    }
    split = split.clamp(1, items.len().saturating_sub(1).max(1));
    let right = items.split_off(split);
    let (r1, r2) = halves(region);
    rec(problem, areas, r1, items, positions, out);
    rec(problem, areas, r2, right, positions, out);
}

/// Splits a region into two halves along its longer side.
fn halves(region: Rect) -> (Rect, Rect) {
    if region.width() >= region.height() {
        (
            Rect {
                llx: region.llx,
                lly: region.lly,
                urx: region.llx + region.width() / 2.0,
                ury: region.ury,
            },
            Rect {
                llx: region.llx + region.width() / 2.0,
                lly: region.lly,
                urx: region.urx,
                ury: region.ury,
            },
        )
    } else {
        (
            Rect {
                llx: region.llx,
                lly: region.lly,
                urx: region.urx,
                ury: region.lly + region.height() / 2.0,
            },
            Rect {
                llx: region.llx,
                lly: region.lly + region.height() / 2.0,
                urx: region.urx,
                ury: region.ury,
            },
        )
    }
}

/// Linearly maps the items' bounding box onto the region.
fn map_into(region: Rect, items: &[usize], positions: &[(f64, f64)], out: &mut [(f64, f64)]) {
    if items.is_empty() {
        return;
    }
    let mut lo = (f64::INFINITY, f64::INFINITY);
    let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &i in items {
        lo = (lo.0.min(positions[i].0), lo.1.min(positions[i].1));
        hi = (hi.0.max(positions[i].0), hi.1.max(positions[i].1));
    }
    let spanx = (hi.0 - lo.0).max(1e-9);
    let spany = (hi.1 - lo.1).max(1e-9);
    for &i in items {
        let fx = (positions[i].0 - lo.0) / spanx;
        let fy = (positions[i].1 - lo.1) / spany;
        out[i] = (
            region.llx + fx * region.width(),
            region.lly + fy * region.height(),
        );
    }
}

/// The shared bin scatter behind the density grid and the eDensity
/// backend's charge accumulation: each fixed item chunk emits `(bin,
/// value)` contributions in item order via `emit`; the chunks are folded
/// into `acc` sequentially in chunk order, reproducing the serial
/// scatter's addition order exactly — bitwise identical at every thread
/// count.
pub fn scatter_accumulate(
    items: usize,
    chunk: usize,
    acc: &mut [f64],
    emit: impl Fn(usize, &mut Vec<(u32, f64)>) + Sync,
) {
    let scatter: Vec<Vec<(u32, f64)>> = cp_parallel::par_map_ranges(items, chunk, |range| {
        let mut part = Vec::with_capacity(range.len());
        for i in range {
            emit(i, &mut part);
        }
        part
    });
    for part in &scatter {
        for &(b, v) in part {
            acc[b as usize] += v;
        }
    }
}

/// Bins per side of the density grid for `m` movables.
pub fn density_bins(m: usize) -> usize {
    ((m as f64).sqrt() / 2.0).ceil().max(2.0) as usize
}

/// The per-bin movable-area grid of a placement on the
/// [`density_bins`]`(m) ×` [`density_bins`]`(m)` grid, row-major.
fn area_grid_soa(
    problem: &PlacementProblem,
    soa: &PlacementSoa,
    positions: &[(f64, f64)],
) -> (usize, Vec<f64>) {
    let bins = density_bins(problem.movable_count());
    let core = problem.core;
    let (bw, bh) = (core.width() / bins as f64, core.height() / bins as f64);
    let mut area = vec![0.0f64; bins * bins];
    scatter_accumulate(positions.len(), CELL_CHUNK, &mut area, |i, part| {
        let (x, y) = positions[i];
        let bx = (((x - core.llx) / bw) as usize).min(bins - 1);
        let by = (((y - core.lly) / bh) as usize).min(bins - 1);
        part.push(((by * bins + bx) as u32, soa.area[i]));
    });
    (bins, area)
}

/// Density overflow of a placement: the fraction of movable area exceeding
/// per-bin capacity (`bin_area · density_target`), on a `bins × bins` grid
/// sized to the problem.
pub fn density_overflow(problem: &PlacementProblem, positions: &[(f64, f64)]) -> f64 {
    density_overflow_soa(problem, &PlacementSoa::from_problem(problem), positions)
}

/// Per-bin overflow amounts `(area − capacity)⁺` on the density grid —
/// the spatial view behind the scalar [`density_overflow_soa`], recorded
/// as a field frame when fields are enabled. Serial on purpose: it only
/// runs on the instrumentation path.
pub fn overflow_grid_soa(
    problem: &PlacementProblem,
    soa: &PlacementSoa,
    positions: &[(f64, f64)],
) -> (usize, Vec<f32>) {
    let m = problem.movable_count();
    if m == 0 {
        return (0, Vec::new());
    }
    let (bins, area) = area_grid_soa(problem, soa, positions);
    let core = problem.core;
    let (bw, bh) = (core.width() / bins as f64, core.height() / bins as f64);
    let grid = area
        .iter()
        .enumerate()
        .map(|(b, &a)| {
            let (by, bx) = (b / bins, b % bins);
            let bin = Rect::new(core.llx + bx as f64 * bw, core.lly + by as f64 * bh, bw, bh);
            let cap = problem.free_area_in(&bin) * problem.density_target;
            (a - cap).max(0.0) as f32
        })
        .collect();
    (bins, grid)
}

/// Per-bin summed displacement magnitude `‖to − from‖₂` binned at the
/// destination position — the spreading-vs-lower-bound conflict field.
/// Serial on purpose: it only runs on the instrumentation path.
pub fn displacement_grid(
    problem: &PlacementProblem,
    from: &[(f64, f64)],
    to: &[(f64, f64)],
) -> (usize, Vec<f32>) {
    let m = problem.movable_count().min(from.len()).min(to.len());
    if m == 0 {
        return (0, Vec::new());
    }
    let bins = density_bins(problem.movable_count());
    let core = problem.core;
    let (bw, bh) = (core.width() / bins as f64, core.height() / bins as f64);
    let mut grid = vec![0.0f64; bins * bins];
    for i in 0..m {
        let (dx, dy) = (to[i].0 - from[i].0, to[i].1 - from[i].1);
        let bx = (((to[i].0 - core.llx) / bw) as usize).min(bins - 1);
        let by = (((to[i].1 - core.lly) / bh) as usize).min(bins - 1);
        grid[by * bins + bx] += (dx * dx + dy * dy).sqrt();
    }
    (bins, grid.into_iter().map(|v| v as f32).collect())
}

/// [`density_overflow`] over a prebuilt [`PlacementSoa`]: the bin scatter
/// reads cell areas from the contiguous arena and the total from the
/// precomputed sum. Bit-identical to [`density_overflow`].
pub fn density_overflow_soa(
    problem: &PlacementProblem,
    soa: &PlacementSoa,
    positions: &[(f64, f64)],
) -> f64 {
    let m = problem.movable_count();
    if m == 0 {
        return 0.0;
    }
    // Bin scatter: each fixed cell chunk computes (bin, area) contributions
    // in cell order; the chunks are folded into the grid sequentially in
    // chunk order, reproducing the serial scatter's addition order exactly.
    let (bins, area) = area_grid_soa(problem, soa, positions);
    let core = problem.core;
    let (bw, bh) = (core.width() / bins as f64, core.height() / bins as f64);
    let total: f64 = soa.total_area.max(1e-12);
    // Per-bin capacity (blockage clipping) dominates; sum overflow with a
    // deterministic parallel reduction over the row-major bin order.
    let over = cp_parallel::par_sum(bins * bins, BIN_CHUNK, |range| {
        let mut s = 0.0;
        for b in range {
            let (by, bx) = (b / bins, b % bins);
            let bin = Rect::new(core.llx + bx as f64 * bw, core.lly + by as f64 * bh, bw, bh);
            let cap = problem.free_area_in(&bin) * problem.density_target;
            s += (area[b] - cap).max(0.0);
        }
        s
    });
    over / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;

    fn uniform_problem(n: usize) -> PlacementProblem {
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0
                };
                n
            ],
            fixed: vec![],
            hypergraph: Hypergraph::new(n, vec![]),
            net_weights: vec![],
            core: Rect::new(0.0, 0.0, 100.0, 100.0),
            region: vec![None; n],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.5,
        }
    }

    #[test]
    fn spreading_reduces_overflow() {
        let p = uniform_problem(400);
        // All cells piled in one corner.
        let piled = vec![(1.0, 1.0); 400];
        let before = density_overflow(&p, &piled);
        let spread_pos = spread(&p, &piled);
        let after = density_overflow(&p, &spread_pos);
        assert!(before > 0.5, "piled overflow {before}");
        assert!(after < before / 4.0, "after {after} vs before {before}");
        for &(x, y) in &spread_pos {
            assert!(p.core.contains(x, y));
        }
    }

    #[test]
    fn spreading_preserves_relative_order_roughly() {
        let p = uniform_problem(100);
        // Cells on a diagonal line, crowded.
        let pos: Vec<(f64, f64)> = (0..100)
            .map(|i| (10.0 + i as f64 * 0.01, 10.0 + i as f64 * 0.01))
            .collect();
        let s = spread(&p, &pos);
        // Cell 0 should stay left of cell 99.
        assert!(s[0].0 < s[99].0);
    }

    #[test]
    fn region_constraints_clamp() {
        let mut p = uniform_problem(10);
        let box_r = Rect::new(40.0, 40.0, 10.0, 10.0);
        for i in 0..10 {
            p.set_region(i, box_r);
        }
        let piled = vec![(1.0, 1.0); 10];
        let s = spread(&p, &piled);
        for &(x, y) in &s {
            assert!(box_r.contains(x, y), "({x}, {y}) outside region");
        }
    }

    #[test]
    fn empty_problem() {
        let p = uniform_problem(0);
        assert!(spread(&p, &[]).is_empty());
        assert_eq!(density_overflow(&p, &[]), 0.0);
    }
}
