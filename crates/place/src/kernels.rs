//! Flat, batched, branch-free CG vector kernels over the solver's scratch
//! buffers.
//!
//! The conjugate-gradient loop's non-SpMV work is a closed set of
//! element-wise passes and reductions. Unfused, one iteration walks the
//! iterate, residual, preconditioned residual and direction vectors seven
//! times; at 10⁶ variables each pass streams 8 MB per vector, so the loop
//! is memory-bound on traffic that fusion removes. The kernels here fuse
//! the passes that read the same cache lines:
//!
//! - [`axpy_dot`] — residual update and its norm in one pass,
//! - [`fused_step`] — iterate update, residual update *and* residual norm
//!   in one pass (the body of a CG step),
//! - [`jacobi_dot`] — diagonal preconditioner application fused with the
//!   `r·z` inner product,
//! - [`xpay`] / [`axpy`] / [`dot`] / [`sub_dot`] — the remaining
//!   primitive shapes.
//!
//! **Bitwise contract.** Every fused kernel performs the same per-element
//! arithmetic in the same order as the unfused sequence it replaces, over
//! the same fixed chunk geometry ([`VEC_CHUNK`]), and reduces partials
//! with `cp-parallel`'s fixed-order tree. Fused and unfused solves are
//! therefore bit-identical to each other — and to the pre-refactor
//! implementation — at every thread count; the jagged-oracle proptests in
//! [`crate::solver`] pin this.

/// Vector elements per parallel chunk in all CG kernels. One shared
/// constant keeps every kernel — fused or not — on the same chunk
/// geometry, which is what makes their reductions interchangeable bit
/// for bit.
pub const VEC_CHUNK: usize = 1024;

/// Deterministic parallel dot product `Σ a[i]·b[i]` (fixed chunks,
/// fixed-order tree reduction — see `cp-parallel`).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    cp_parallel::par_sum(a.len().min(b.len()), VEC_CHUNK, |r| {
        let mut s = 0.0;
        for i in r {
            s += a[i] * b[i];
        }
        s
    })
}

/// `y += alpha · x`, element-wise.
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    cp_parallel::par_chunks_mut(y, VEC_CHUNK, |_, off, slice| {
        for (k, yi) in slice.iter_mut().enumerate() {
            *yi += alpha * x[off + k];
        }
    });
}

/// Fused update-and-norm: `y += alpha · x`, returning `Σ y[i]²` of the
/// updated vector. One pass where `axpy` + `dot(y, y)` would take two;
/// bit-identical to that sequence.
pub fn axpy_dot(y: &mut [f64], alpha: f64, x: &[f64]) -> f64 {
    cp_parallel::par_chunks_mut_sum(y, VEC_CHUNK, |_, off, slice| {
        let mut s = 0.0;
        for (k, yi) in slice.iter_mut().enumerate() {
            *yi += alpha * x[off + k];
            s += *yi * *yi;
        }
        s
    })
}

/// `y = x + beta · y`, element-wise (the CG direction update).
pub fn xpay(y: &mut [f64], beta: f64, x: &[f64]) {
    cp_parallel::par_chunks_mut(y, VEC_CHUNK, |_, off, slice| {
        for (k, yi) in slice.iter_mut().enumerate() {
            *yi = x[off + k] + beta * *yi;
        }
    });
}

/// Fused difference-and-norm: `r = b - ax`, returning `Σ r[i]²`. Produces
/// the initial CG residual and its norm in one pass.
pub fn sub_dot(r: &mut [f64], b: &[f64], ax: &[f64]) -> f64 {
    cp_parallel::par_chunks_mut_sum(r, VEC_CHUNK, |_, off, slice| {
        let mut s = 0.0;
        for (k, ri) in slice.iter_mut().enumerate() {
            *ri = b[off + k] - ax[off + k];
            s += *ri * *ri;
        }
        s
    })
}

/// Fused Jacobi application and inner product: `z = r / diag`, returning
/// `Σ r[i]·z[i]`. One pass where the preconditioner apply + `dot(r, z)`
/// would take two; bit-identical to that sequence.
pub fn jacobi_dot(z: &mut [f64], r: &[f64], diag: &[f64]) -> f64 {
    cp_parallel::par_chunks_mut_sum(z, VEC_CHUNK, |_, off, slice| {
        let mut s = 0.0;
        for (k, zi) in slice.iter_mut().enumerate() {
            *zi = r[off + k] / diag[off + k];
            s += r[off + k] * *zi;
        }
        s
    })
}

/// The fused body of one CG step: `x += alpha · p`, `r -= alpha · ap`,
/// returning `Σ r[i]²` of the updated residual. Replaces two `axpy`
/// passes and a `dot` — three full memory sweeps — with one, and is
/// bit-identical to the unfused sequence.
pub fn fused_step(x: &mut [f64], r: &mut [f64], p: &[f64], ap: &[f64], alpha: f64) -> f64 {
    cp_parallel::par_chunks2_mut_sum(x, r, VEC_CHUNK, |_, off, sx, sr| {
        let mut s = 0.0;
        for (k, (xi, ri)) in sx.iter_mut().zip(sr.iter_mut()).enumerate() {
            *xi += alpha * p[off + k];
            *ri -= alpha * ap[off + k];
            s += *ri * *ri;
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let gen = |salt: u64| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(salt);
                    ((h % 4096) as f64 - 2048.0) * 1e-3
                })
                .collect()
        };
        (gen(1), gen(2), gen(3), gen(4))
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fused_step_matches_unfused_sequence_bitwise() {
        // Sizes straddling the chunk boundary, so partial chunks and the
        // tree shapes are exercised.
        for n in [1usize, 7, VEC_CHUNK, VEC_CHUNK + 1, 3 * VEC_CHUNK + 17] {
            let (x0, r0, p, ap) = vecs(n);
            let alpha = 0.3725;
            // Unfused reference: two axpys then a dot, seed order.
            let mut x_ref = x0.clone();
            let mut r_ref = r0.clone();
            axpy(&mut x_ref, alpha, &p);
            axpy(&mut r_ref, -alpha, &ap);
            let rr_ref = dot(&r_ref, &r_ref);
            for threads in [1usize, 4, 8] {
                let mut x = x0.clone();
                let mut r = r0.clone();
                let rr = cp_parallel::with_threads(threads, || {
                    fused_step(&mut x, &mut r, &p, &ap, alpha)
                });
                assert_eq!(bits(&x_ref), bits(&x), "n={n} t={threads}");
                assert_eq!(bits(&r_ref), bits(&r), "n={n} t={threads}");
                assert_eq!(rr_ref.to_bits(), rr.to_bits(), "n={n} t={threads}");
            }
        }
    }

    #[test]
    fn axpy_dot_matches_axpy_then_dot() {
        let n = 2 * VEC_CHUNK + 333;
        let (y0, x, _, _) = vecs(n);
        let mut y_ref = y0.clone();
        axpy(&mut y_ref, -1.25, &x);
        let want = dot(&y_ref, &y_ref);
        let mut y = y0.clone();
        let got = axpy_dot(&mut y, -1.25, &x);
        assert_eq!(bits(&y_ref), bits(&y));
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn jacobi_dot_matches_divide_then_dot() {
        let n = VEC_CHUNK + 99;
        let (r, mut d, _, _) = vecs(n);
        for v in d.iter_mut() {
            *v = v.abs() + 0.5; // positive diagonal
        }
        let mut z_ref = vec![0.0; n];
        cp_parallel::par_chunks_mut(&mut z_ref, VEC_CHUNK, |_, off, s| {
            for (k, zi) in s.iter_mut().enumerate() {
                *zi = r[off + k] / d[off + k];
            }
        });
        let want = dot(&r, &z_ref);
        let mut z = vec![0.0; n];
        let got = jacobi_dot(&mut z, &r, &d);
        assert_eq!(bits(&z_ref), bits(&z));
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn sub_dot_matches_sub_then_dot() {
        let n = VEC_CHUNK * 2;
        let (b, ax, _, _) = vecs(n);
        let mut r_ref = vec![0.0; n];
        cp_parallel::par_chunks_mut(&mut r_ref, VEC_CHUNK, |_, off, s| {
            for (k, ri) in s.iter_mut().enumerate() {
                *ri = b[off + k] - ax[off + k];
            }
        });
        let want = dot(&r_ref, &r_ref);
        let mut r = vec![0.0; n];
        let got = sub_dot(&mut r, &b, &ax);
        assert_eq!(bits(&r_ref), bits(&r));
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn xpay_is_the_direction_update() {
        let n = 513;
        let (p0, z, _, _) = vecs(n);
        let mut p = p0.clone();
        xpay(&mut p, 0.75, &z);
        for i in 0..n {
            assert_eq!(p[i].to_bits(), (z[i] + 0.75 * p0[i]).to_bits());
        }
    }
}
