//! Half-perimeter wirelength over a placement problem.

use crate::problem::PlacementProblem;

/// Weighted HPWL of all hyperedges under the given movable positions.
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_netlist::Floorplan;
/// use cp_place::{hpwl::weighted_hpwl, PlacementProblem};
///
/// let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate();
/// let fp = Floorplan::for_netlist(&netlist, 0.6, 1.0);
/// let p = PlacementProblem::from_netlist(&netlist, &fp);
/// let center = vec![fp.core.center(); p.movable_count()];
/// assert!(weighted_hpwl(&p, &center) > 0.0); // port-to-center spans remain
/// ```
pub fn weighted_hpwl(problem: &PlacementProblem, positions: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    for e in 0..problem.hypergraph.edge_count() as u32 {
        total += problem.net_weights[e as usize] * edge_hpwl(problem, e, positions);
    }
    total
}

/// Unweighted HPWL (every net counted at weight 1) — the metric the paper's
/// Table 2 reports.
pub fn raw_hpwl(problem: &PlacementProblem, positions: &[(f64, f64)]) -> f64 {
    (0..problem.hypergraph.edge_count() as u32)
        .map(|e| edge_hpwl(problem, e, positions))
        .sum()
}

/// HPWL of one hyperedge.
pub fn edge_hpwl(problem: &PlacementProblem, e: u32, positions: &[(f64, f64)]) -> f64 {
    let verts = problem.hypergraph.edge(e);
    if verts.len() < 2 {
        return 0.0;
    }
    let mut lo = (f64::INFINITY, f64::INFINITY);
    let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &v in verts {
        let (x, y) = problem.vertex_pos(v, positions);
        lo = (lo.0.min(x), lo.1.min(y));
        hi = (hi.0.max(x), hi.1.max(y));
    }
    (hi.0 - lo.0) + (hi.1 - lo.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;

    fn toy() -> PlacementProblem {
        // Two movables + one fixed terminal at (10, 0).
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0,
                },
                Object {
                    width: 1.0,
                    height: 1.0,
                },
            ],
            fixed: vec![(10.0, 0.0)],
            hypergraph: Hypergraph::new(3, vec![(vec![0, 1], 1.0), (vec![1, 2], 1.0)]),
            net_weights: vec![1.0, 3.0],
            core: Rect::new(0.0, 0.0, 10.0, 10.0),
            region: vec![None, None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        }
    }

    #[test]
    fn hand_computed_hpwl() {
        let p = toy();
        let pos = vec![(0.0, 0.0), (2.0, 1.0)];
        // Edge 0: bbox (0,0)-(2,1) ⇒ 3. Edge 1: (2,1)-(10,0) ⇒ 9.
        assert_eq!(edge_hpwl(&p, 0, &pos), 3.0);
        assert_eq!(edge_hpwl(&p, 1, &pos), 9.0);
        assert_eq!(raw_hpwl(&p, &pos), 12.0);
        assert_eq!(weighted_hpwl(&p, &pos), 3.0 + 3.0 * 9.0);
    }

    #[test]
    fn coincident_points_have_zero_hpwl() {
        let p = toy();
        let pos = vec![(5.0, 5.0), (5.0, 5.0)];
        assert_eq!(edge_hpwl(&p, 0, &pos), 0.0);
    }
}
