//! Half-perimeter wirelength over a placement problem.
//!
//! The full-design sums are parallelized over fixed net chunks with a
//! fixed-order tree reduction (see `cp-parallel`), so totals are
//! bit-identical for every `CP_THREADS` setting. [`IncrementalHpwl`]
//! additionally caches per-net bounding-box lengths so detailed placement
//! can re-evaluate moves against only the touched nets.

use crate::problem::PlacementProblem;
use crate::soa::VertexCoords;

/// Nets per parallel chunk for full-design HPWL sums.
const NET_CHUNK: usize = 256;

/// Weighted HPWL of all hyperedges under the given movable positions.
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_netlist::Floorplan;
/// use cp_place::{hpwl::weighted_hpwl, PlacementProblem};
///
/// let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate();
/// let fp = Floorplan::for_netlist(&netlist, 0.6, 1.0);
/// let p = PlacementProblem::from_netlist(&netlist, &fp);
/// let center = vec![fp.core.center(); p.movable_count()];
/// assert!(weighted_hpwl(&p, &center) > 0.0); // port-to-center spans remain
/// ```
pub fn weighted_hpwl(problem: &PlacementProblem, positions: &[(f64, f64)]) -> f64 {
    cp_parallel::par_sum(problem.hypergraph.edge_count(), NET_CHUNK, |r| {
        let mut s = 0.0;
        for e in r {
            s += problem.net_weights[e] * edge_hpwl(problem, e as u32, positions);
        }
        s
    })
}

/// Unweighted HPWL (every net counted at weight 1) — the metric the paper's
/// Table 2 reports.
pub fn raw_hpwl(problem: &PlacementProblem, positions: &[(f64, f64)]) -> f64 {
    cp_parallel::par_sum(problem.hypergraph.edge_count(), NET_CHUNK, |r| {
        let mut s = 0.0;
        for e in r {
            s += edge_hpwl(problem, e as u32, positions);
        }
        s
    })
}

/// [`raw_hpwl`] over a prebuilt [`VertexCoords`] arena: the per-net
/// bounding-box sweep indexes the flat per-axis arrays directly instead
/// of branching between movable and fixed storage per pin. Bit-identical
/// to [`raw_hpwl`] at the same positions.
pub fn raw_hpwl_soa(problem: &PlacementProblem, coords: &VertexCoords) -> f64 {
    let (xs, ys) = (coords.xs(), coords.ys());
    cp_parallel::par_sum(problem.hypergraph.edge_count(), NET_CHUNK, |r| {
        let mut s = 0.0;
        for e in r {
            s += edge_hpwl_soa(problem, e as u32, xs, ys);
        }
        s
    })
}

/// HPWL of one hyperedge from flat per-axis coordinate arrays.
fn edge_hpwl_soa(problem: &PlacementProblem, e: u32, xs: &[f64], ys: &[f64]) -> f64 {
    let verts = problem.hypergraph.edge(e);
    if verts.len() < 2 {
        return 0.0;
    }
    let mut lo = (f64::INFINITY, f64::INFINITY);
    let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &v in verts {
        let (x, y) = (xs[v as usize], ys[v as usize]);
        lo = (lo.0.min(x), lo.1.min(y));
        hi = (hi.0.max(x), hi.1.max(y));
    }
    (hi.0 - lo.0) + (hi.1 - lo.1)
}

/// HPWL of one hyperedge.
pub fn edge_hpwl(problem: &PlacementProblem, e: u32, positions: &[(f64, f64)]) -> f64 {
    let verts = problem.hypergraph.edge(e);
    if verts.len() < 2 {
        return 0.0;
    }
    let mut lo = (f64::INFINITY, f64::INFINITY);
    let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &v in verts {
        let (x, y) = problem.vertex_pos(v, positions);
        lo = (lo.0.min(x), lo.1.min(y));
        hi = (hi.0.max(x), hi.1.max(y));
    }
    (hi.0 - lo.0) + (hi.1 - lo.1)
}

/// Per-net HPWL cache with exact delta maintenance.
///
/// Detailed placement moves one or two cells at a time, touching only
/// their incident nets; recomputing the full design HPWL per move is
/// wasted work. This cache keeps each net's current (unweighted) HPWL
/// plus the running total, and [`IncrementalHpwl::update_nets`] recomputes
/// exactly the touched nets, adjusting the total by their deltas.
///
/// Cached entries are always *exact recomputes* of [`edge_hpwl`] at the
/// positions they were updated against — never approximations — so move
/// accept/reject decisions built on the cache match decisions built on
/// fresh recomputes bit for bit.
#[derive(Debug, Clone)]
pub struct IncrementalHpwl {
    net: Vec<f64>,
    total: f64,
}

impl IncrementalHpwl {
    /// Builds the cache at `positions` (parallel over net chunks).
    pub fn new(problem: &PlacementProblem, positions: &[(f64, f64)]) -> Self {
        let net = cp_parallel::par_map_ranges(problem.hypergraph.edge_count(), NET_CHUNK, |r| {
            r.map(|e| edge_hpwl(problem, e as u32, positions))
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect::<Vec<f64>>();
        let n = net.len();
        let total = cp_parallel::par_sum(n, NET_CHUNK, |r| {
            let mut s = 0.0;
            for e in r {
                s += net[e];
            }
            s
        });
        Self { net, total }
    }

    /// Current unweighted HPWL total (maintained by exact per-net deltas).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Cached HPWL of one net.
    pub fn net(&self, e: u32) -> f64 {
        self.net[e as usize]
    }

    /// Recomputes the given nets at `positions` and folds their deltas
    /// into the total. Call after moving a cell, passing its incident
    /// nets; a net listed twice is simply recomputed twice (idempotent).
    pub fn update_nets(
        &mut self,
        problem: &PlacementProblem,
        positions: &[(f64, f64)],
        nets: &[u32],
    ) {
        for &e in nets {
            let fresh = edge_hpwl(problem, e, positions);
            self.total += fresh - self.net[e as usize];
            self.net[e as usize] = fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;

    fn toy() -> PlacementProblem {
        // Two movables + one fixed terminal at (10, 0).
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0,
                },
                Object {
                    width: 1.0,
                    height: 1.0,
                },
            ],
            fixed: vec![(10.0, 0.0)],
            hypergraph: Hypergraph::new(3, vec![(vec![0, 1], 1.0), (vec![1, 2], 1.0)]),
            net_weights: vec![1.0, 3.0],
            core: Rect::new(0.0, 0.0, 10.0, 10.0),
            region: vec![None, None],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.9,
        }
    }

    #[test]
    fn hand_computed_hpwl() {
        let p = toy();
        let pos = vec![(0.0, 0.0), (2.0, 1.0)];
        // Edge 0: bbox (0,0)-(2,1) ⇒ 3. Edge 1: (2,1)-(10,0) ⇒ 9.
        assert_eq!(edge_hpwl(&p, 0, &pos), 3.0);
        assert_eq!(edge_hpwl(&p, 1, &pos), 9.0);
        assert_eq!(raw_hpwl(&p, &pos), 12.0);
        assert_eq!(weighted_hpwl(&p, &pos), 3.0 + 3.0 * 9.0);
    }

    #[test]
    fn coincident_points_have_zero_hpwl() {
        let p = toy();
        let pos = vec![(5.0, 5.0), (5.0, 5.0)];
        assert_eq!(edge_hpwl(&p, 0, &pos), 0.0);
    }

    #[test]
    fn incremental_tracks_full_recompute() {
        let p = toy();
        let mut pos = vec![(0.0, 0.0), (2.0, 1.0)];
        let mut inc = IncrementalHpwl::new(&p, &pos);
        assert_eq!(inc.total(), raw_hpwl(&p, &pos));
        assert_eq!(inc.net(0), 3.0);
        // Move cell 1 (touches both nets) and update only those.
        pos[1] = (4.0, 2.0);
        inc.update_nets(&p, &pos, &[0, 1]);
        assert_eq!(inc.net(0), edge_hpwl(&p, 0, &pos));
        assert_eq!(inc.net(1), edge_hpwl(&p, 1, &pos));
        assert!((inc.total() - raw_hpwl(&p, &pos)).abs() < 1e-9);
    }

    #[test]
    fn soa_hpwl_matches_tuple_path_bitwise() {
        let p = toy();
        let pos = vec![(0.37, 0.71), (2.93, 1.13)];
        let mut coords = VertexCoords::new(&p);
        coords.set_movable(&pos);
        assert_eq!(
            raw_hpwl_soa(&p, &coords).to_bits(),
            raw_hpwl(&p, &pos).to_bits()
        );
    }

    #[test]
    fn hpwl_is_thread_count_invariant() {
        let p = toy();
        let pos = vec![(0.3, 0.7), (2.9, 1.1)];
        let seq = cp_parallel::with_threads(1, || (raw_hpwl(&p, &pos), weighted_hpwl(&p, &pos)));
        let par = cp_parallel::with_threads(4, || (raw_hpwl(&p, &pos), weighted_hpwl(&p, &pos)));
        assert_eq!(seq.0.to_bits(), par.0.to_bits());
        assert_eq!(seq.1.to_bits(), par.1.to_bits());
    }
}
