//! Clock tree synthesis by recursive geometric bisection.
//!
//! Builds a buffered clock tree over the design's flop positions: sinks are
//! split by the longer bounding-box axis until leaves hold few sinks; every
//! tree node hosts a clock buffer at its sinks' centroid. Per-sink insertion
//! delay follows the same linear delay model STA uses, so CTS skew plugs
//! straight into [`cp_timing`]-style analysis.

use crate::error::PlaceError;
use cp_netlist::library::CellClass;
use cp_netlist::netlist::Netlist;
use cp_netlist::CellId;

/// CTS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsOptions {
    /// Maximum sinks driven directly by a leaf buffer.
    pub max_leaf_sinks: usize,
}

impl Default for CtsOptions {
    fn default() -> Self {
        Self { max_leaf_sinks: 16 }
    }
}

/// A synthesized clock tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTree {
    /// Clock arrival (insertion delay) per netlist cell, ps; 0 for
    /// non-sequential cells.
    pub arrival: Vec<f64>,
    /// Buffers inserted.
    pub buffer_count: usize,
    /// Total clock wirelength, µm.
    pub wirelength: f64,
    /// Global skew (max − min sink arrival), ps.
    pub skew: f64,
}

/// Synthesizes a clock tree over the sequential cells of `netlist` at the
/// given positions (indexed like hypergraph vertices: cells then ports).
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_place::cts::{synthesize_clock_tree, CtsOptions};
///
/// let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate();
/// let total = netlist.cell_count() + netlist.port_count();
/// let pos: Vec<(f64, f64)> = (0..total)
///     .map(|i| ((i % 40) as f64 * 2.0, (i / 40) as f64 * 2.0))
///     .collect();
/// let tree = synthesize_clock_tree(&netlist, &pos, &CtsOptions::default()).unwrap();
/// assert!(tree.buffer_count > 0);
/// assert!(tree.skew >= 0.0);
/// ```
///
/// # Errors
///
/// - [`PlaceError::InvalidInput`] when the library carries no clock buffer
///   master or `positions` doesn't cover every cell.
/// - [`PlaceError::NonFinite`] when a sink position carries NaN/Inf.
pub fn synthesize_clock_tree(
    netlist: &Netlist,
    positions: &[(f64, f64)],
    options: &CtsOptions,
) -> Result<ClockTree, PlaceError> {
    let lib = netlist.library();
    let Some(buf) = lib.find("CLKBUF_X4").or_else(|| lib.find("BUF_X4")) else {
        return Err(PlaceError::InvalidInput {
            reason: "library has no clock buffer master (CLKBUF_X4 or BUF_X4)".to_string(),
        });
    };
    let buf = lib.cell(buf);
    if positions.len() < netlist.cell_count() {
        return Err(PlaceError::InvalidInput {
            reason: format!(
                "{} positions for {} cells",
                positions.len(),
                netlist.cell_count()
            ),
        });
    }
    let sinks: Vec<(CellId, (f64, f64), f64)> = netlist
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| lib.cell(c.ty).class == CellClass::Sequential)
        .map(|(i, c)| {
            let id = CellId(i as u32);
            let cap = lib.cell(c.ty).input_caps.get(1).copied().unwrap_or(1.0);
            (id, positions[i], cap)
        })
        .collect();
    if sinks
        .iter()
        .any(|&(_, p, _)| !(p.0.is_finite() && p.1.is_finite()))
    {
        return Err(PlaceError::NonFinite { stage: "cts sinks" });
    }
    let mut tree = ClockTree {
        arrival: vec![0.0; netlist.cell_count()],
        buffer_count: 0,
        wirelength: 0.0,
        skew: 0.0,
    };
    if sinks.is_empty() {
        return Ok(tree);
    }
    let idx: Vec<usize> = (0..sinks.len()).collect();
    build(
        netlist,
        &sinks,
        idx,
        0.0,
        options,
        (buf.intrinsic_delay, buf.drive_res, buf.input_caps[0]),
        &mut tree,
    );
    let arrivals: Vec<f64> = sinks
        .iter()
        .map(|&(c, _, _)| tree.arrival[c.index()])
        .collect();
    let max = arrivals.iter().copied().fold(f64::MIN, f64::max);
    let min = arrivals.iter().copied().fold(f64::MAX, f64::min);
    tree.skew = max - min;
    Ok(tree)
}

fn centroid(sinks: &[(CellId, (f64, f64), f64)], idx: &[usize]) -> (f64, f64) {
    let n = idx.len() as f64;
    let (sx, sy) = idx.iter().fold((0.0, 0.0), |acc, &i| {
        (acc.0 + sinks[i].1 .0, acc.1 + sinks[i].1 .1)
    });
    (sx / n, sy / n)
}

/// Recursively buffers a sink set; `arrival_here` is the insertion delay up
/// to (and including the input of) this node's buffer.
fn build(
    netlist: &Netlist,
    sinks: &[(CellId, (f64, f64), f64)],
    mut idx: Vec<usize>,
    arrival_here: f64,
    options: &CtsOptions,
    buf: (f64, f64, f64), // (intrinsic ps, drive kΩ, input cap fF)
    tree: &mut ClockTree,
) {
    let lib = netlist.library();
    let (b_intr, b_res, b_cap) = buf;
    let here = centroid(sinks, &idx);
    tree.buffer_count += 1;
    if idx.len() <= options.max_leaf_sinks {
        // Leaf buffer drives the sinks directly.
        let mut load = 0.0;
        let mut dists = Vec::with_capacity(idx.len());
        for &i in &idx {
            let (_, p, cap) = sinks[i];
            let d = (p.0 - here.0).abs() + (p.1 - here.1).abs();
            load += cap + lib.wire_cap * d;
            dists.push((i, d, cap));
            tree.wirelength += d;
        }
        let drive_delay = b_intr + b_res * load;
        for (i, d, cap) in dists {
            let wire = lib.wire_res * d * (cap + 0.5 * lib.wire_cap * d);
            tree.arrival[sinks[i].0.index()] = arrival_here + drive_delay + wire;
        }
        return;
    }
    // Split along the longer bbox axis at the median.
    let (mut lo, mut hi) = ((f64::MAX, f64::MAX), (f64::MIN, f64::MIN));
    for &i in &idx {
        let p = sinks[i].1;
        lo = (lo.0.min(p.0), lo.1.min(p.1));
        hi = (hi.0.max(p.0), hi.1.max(p.1));
    }
    let horizontal = (hi.0 - lo.0) >= (hi.1 - lo.1);
    idx.sort_by(|&a, &b| {
        let ka = if horizontal {
            sinks[a].1 .0
        } else {
            sinks[a].1 .1
        };
        let kb = if horizontal {
            sinks[b].1 .0
        } else {
            sinks[b].1 .1
        };
        ka.total_cmp(&kb)
    });
    let right = idx.split_off(idx.len() / 2);
    let c_left = centroid(sinks, &idx);
    let c_right = centroid(sinks, &right);
    let d_left = (c_left.0 - here.0).abs() + (c_left.1 - here.1).abs();
    let d_right = (c_right.0 - here.0).abs() + (c_right.1 - here.1).abs();
    tree.wirelength += d_left + d_right;
    let load = 2.0 * b_cap + lib.wire_cap * (d_left + d_right);
    let drive_delay = b_intr + b_res * load;
    let wire_left = lib.wire_res * d_left * (b_cap + 0.5 * lib.wire_cap * d_left);
    let wire_right = lib.wire_res * d_right * (b_cap + 0.5 * lib.wire_cap * d_right);
    build(
        netlist,
        sinks,
        idx,
        arrival_here + drive_delay + wire_left,
        options,
        buf,
        tree,
    );
    build(
        netlist,
        sinks,
        right,
        arrival_here + drive_delay + wire_right,
        options,
        buf,
        tree,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn with_positions(scale: f64) -> (Netlist, Vec<(f64, f64)>) {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(scale)
            .seed(10)
            .generate();
        let total = n.cell_count() + n.port_count();
        let pos: Vec<(f64, f64)> = (0..total)
            .map(|i| ((i % 60) as f64 * 2.0, (i / 60) as f64 * 2.0))
            .collect();
        (n, pos)
    }

    #[test]
    fn every_flop_gets_an_arrival() {
        let (n, pos) = with_positions(0.01);
        let t = synthesize_clock_tree(&n, &pos, &CtsOptions::default()).expect("cts succeeds");
        let lib = n.library();
        for (i, c) in n.cells().iter().enumerate() {
            if lib.cell(c.ty).class == CellClass::Sequential {
                assert!(t.arrival[i] > 0.0, "flop {i} has no clock arrival");
            } else {
                assert_eq!(t.arrival[i], 0.0);
            }
        }
    }

    #[test]
    fn skew_is_bounded_and_wirelength_positive() {
        let (n, pos) = with_positions(0.01);
        let t = synthesize_clock_tree(&n, &pos, &CtsOptions::default()).expect("cts succeeds");
        assert!(t.wirelength > 0.0);
        assert!(t.skew >= 0.0);
        let max_arrival = t.arrival.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            t.skew < max_arrival,
            "skew {} vs max {}",
            t.skew,
            max_arrival
        );
    }

    #[test]
    fn more_sinks_mean_more_buffers() {
        let (n1, p1) = with_positions(0.005);
        let (n2, p2) = with_positions(0.03);
        let t1 = synthesize_clock_tree(&n1, &p1, &CtsOptions::default()).expect("cts succeeds");
        let t2 = synthesize_clock_tree(&n2, &p2, &CtsOptions::default()).expect("cts succeeds");
        assert!(t2.buffer_count > t1.buffer_count);
    }

    #[test]
    fn no_flops_is_fine() {
        use cp_netlist::{HierTree, Library, NetlistBuilder};
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("nf", lib);
        b.add_cell("u0", inv, HierTree::ROOT);
        let n = b.finish().unwrap();
        let t =
            synthesize_clock_tree(&n, &[(0.0, 0.0)], &CtsOptions::default()).expect("cts succeeds");
        assert_eq!(t.buffer_count, 0);
        assert_eq!(t.skew, 0.0);
    }

    #[test]
    fn leaf_size_affects_tree_depth() {
        let (n, pos) = with_positions(0.02);
        let small = synthesize_clock_tree(&n, &pos, &CtsOptions { max_leaf_sinks: 4 })
            .expect("cts succeeds");
        let large = synthesize_clock_tree(&n, &pos, &CtsOptions { max_leaf_sinks: 64 })
            .expect("cts succeeds");
        assert!(small.buffer_count > large.buffer_count);
    }
}
