//! Pluggable spreading backends for the global placer.
//!
//! The SimPL loop in [`crate::global`] alternates a B2B lower bound with a
//! density-aware *upper bound* (spreading) step; anchors pull the next
//! lower bound toward the spread positions. [`PlacerBackend`] abstracts
//! exactly that spreading step, so the solver, anchor schedule, flow
//! plumbing, checkpointing and QoR gates are shared verbatim between
//! backends:
//!
//! - [`B2bBackend`] — the incumbent recursive-bisection look-ahead
//!   legalization ([`crate::spreading::spread_soa`]). Bit-identical to the
//!   pre-refactor placer at every thread count.
//! - [`EDensityBackend`] — electrostatics-style spreading (eDensity /
//!   ePlace family): cell areas scatter as charge onto a bin grid, a
//!   Poisson-like system on the grid Laplacian is solved with the same CG
//!   kernels as the wirelength model, and cells drift along the resulting
//!   field away from density peaks. Deterministic across thread counts via
//!   `cp-parallel`'s fixed chunking and fixed-order reduction.
//!
//! A backend is instantiated per `place()` call (via
//! [`PlacerBackendKind::instantiate`]); any internal state (grid system,
//! warm-started potential) lives and dies with one placement run, which
//! keeps checkpoint/resume bitwise-deterministic.

use crate::problem::PlacementProblem;
use crate::soa::PlacementSoa;
use crate::solver::{B2bSystem, CgScratch};
use crate::spreading::{scatter_accumulate, spread_soa};

/// Cells per parallel chunk in the charge scatter and position update.
const CELL_CHUNK: usize = 4096;
/// Upper bound on the eDensity grid resolution per axis.
const MAX_BINS: usize = 128;
/// Field-drift sub-passes per spreading call.
const PASSES: usize = 6;
/// CG budget for one Poisson solve on the bin grid.
const POISSON_ITERS: usize = 100;
/// CG tolerance for the Poisson solve.
const POISSON_TOL: f64 = 1e-6;
/// Tikhonov shift added to the grid Laplacian's diagonal: the pure Neumann
/// Laplacian is singular (constant nullspace), and the shift pins it while
/// barely perturbing the field of the zero-mean right-hand side.
const GRID_EPS: f64 = 1e-3;
/// Maximum drift per sub-pass, in bin widths.
const STEP_BINS: f64 = 1.0;

/// Which spreading backend [`crate::global`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacerBackendKind {
    /// Recursive-bisection look-ahead legalization (the incumbent).
    #[default]
    B2b,
    /// Electrostatics-style density spreading.
    EDensity,
}

impl PlacerBackendKind {
    /// Fresh backend instance for one placement run.
    pub fn instantiate(self) -> Box<dyn PlacerBackend> {
        match self {
            Self::B2b => Box::new(B2bBackend),
            Self::EDensity => Box::new(EDensityBackend::new()),
        }
    }

    /// Stable lowercase name (CLI flags, telemetry).
    pub fn name(self) -> &'static str {
        match self {
            Self::B2b => "b2b",
            Self::EDensity => "edensity",
        }
    }

    /// Parses the [`PlacerBackendKind::name`] spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "b2b" => Some(Self::B2b),
            "edensity" => Some(Self::EDensity),
            _ => None,
        }
    }
}

/// The spreading (upper-bound) step of one global-placement iteration.
pub trait PlacerBackend {
    /// Backend name for telemetry.
    fn name(&self) -> &'static str;

    /// Produces density-spread positions from lower-bound `positions`.
    /// Must return one in-core position per movable and be deterministic
    /// across thread counts.
    fn spread(
        &mut self,
        problem: &PlacementProblem,
        soa: &PlacementSoa,
        positions: &[(f64, f64)],
    ) -> Vec<(f64, f64)>;
}

/// The incumbent recursive-bisection spreading, unchanged — every call
/// forwards to [`spread_soa`], so placements are bit-identical to the
/// pre-trait placer.
#[derive(Debug, Clone, Copy, Default)]
pub struct B2bBackend;

impl PlacerBackend for B2bBackend {
    fn name(&self) -> &'static str {
        "b2b"
    }

    fn spread(
        &mut self,
        problem: &PlacementProblem,
        soa: &PlacementSoa,
        positions: &[(f64, f64)],
    ) -> Vec<(f64, f64)> {
        spread_soa(problem, soa, positions)
    }
}

/// Electrostatics-style spreading.
///
/// Per sub-pass: cell areas scatter bilinearly (cloud-in-cell) onto a
/// `bins × bins` grid as charge `ρ`, the potential solves
/// `(L + εI) ψ = ρ − ρ̄` on the grid Laplacian with the shared CG kernels,
/// the field `E = −∇ψ` comes from central differences, and every cell
/// drifts along `E` (normalized so the largest move is [`STEP_BINS`] bin
/// widths), pushing cells from dense regions toward sparse ones. The grid
/// system is built once per run and `ψ` warm-starts across passes and
/// outer iterations.
pub struct EDensityBackend {
    grid: Option<Grid>,
    /// Spread calls so far — the iteration stamp of the charge-grid
    /// field frames.
    calls: u64,
}

struct Grid {
    bins: usize,
    sys: B2bSystem,
    psi: Vec<f64>,
    scratch: CgScratch,
    /// Per-chunk scatter staging reused across passes.
    rho: Vec<f64>,
    ex: Vec<f64>,
    ey: Vec<f64>,
}

impl EDensityBackend {
    /// A backend with no grid yet; the first spread call sizes it.
    pub fn new() -> Self {
        Self {
            grid: None,
            calls: 0,
        }
    }
}

impl Default for EDensityBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Grid {
    /// Builds the `(L + εI)` system for a `bins × bins` 4-neighbor grid.
    /// `B2bSystem::apply` computes `diag_i x_i − Σ val_ij x_j`, so with
    /// `val = 1` per neighbor and `diag = degree + ε` the operator is the
    /// (shifted) graph Laplacian.
    fn new(bins: usize) -> Self {
        let n = bins * bins;
        let mut diag = vec![GRID_EPS; n];
        let mut row_ptr: Vec<u32> = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut val: Vec<f64> = Vec::new();
        row_ptr.push(0);
        for by in 0..bins {
            for bx in 0..bins {
                let i = by * bins + bx;
                let mut push = |j: usize| {
                    col_idx.push(j as u32);
                    val.push(1.0);
                    diag[i] += 1.0;
                };
                if bx > 0 {
                    push(i - 1);
                }
                if bx + 1 < bins {
                    push(i + 1);
                }
                if by > 0 {
                    push(i - bins);
                }
                if by + 1 < bins {
                    push(i + bins);
                }
                row_ptr.push(col_idx.len() as u32);
            }
        }
        Self {
            bins,
            sys: B2bSystem::from_parts(diag, row_ptr, col_idx, val, vec![0.0; n]),
            psi: vec![0.0; n],
            scratch: CgScratch::default(),
            rho: vec![0.0; n],
            ex: vec![0.0; n],
            ey: vec![0.0; n],
        }
    }
}

impl PlacerBackend for EDensityBackend {
    fn name(&self) -> &'static str {
        "edensity"
    }

    fn spread(
        &mut self,
        problem: &PlacementProblem,
        soa: &PlacementSoa,
        positions: &[(f64, f64)],
    ) -> Vec<(f64, f64)> {
        let m = problem.movable_count();
        let mut out = positions.to_vec();
        if m == 0 {
            return out;
        }
        let _span = cp_trace::telemetry_enabled().then(|| cp_trace::span("place.spread"));
        let bins = (((m as f64).sqrt() / 2.0).ceil().max(2.0) as usize).min(MAX_BINS);
        let grid = self.grid.get_or_insert_with(|| Grid::new(bins));
        if grid.bins != bins {
            *grid = Grid::new(bins);
        }
        let core = problem.core;
        let (bw, bh) = (core.width() / bins as f64, core.height() / bins as f64);
        let nb = bins * bins;

        for _pass in 0..PASSES {
            // Charge scatter: bilinear (cloud-in-cell) split of each cell
            // area over the four bins around its position, through the
            // shared fixed-chunk scatter ([`scatter_accumulate`]) so the
            // accumulated field is thread-count invariant.
            let pos = &out;
            grid.rho.iter_mut().for_each(|v| *v = 0.0);
            scatter_accumulate(m, CELL_CHUNK, &mut grid.rho, |i, part| {
                let (x, y) = pos[i];
                // Continuous bin coordinates of the cell center,
                // offset so integer values land on bin centers.
                let fx = ((x - core.llx) / bw - 0.5).clamp(0.0, (bins - 1) as f64);
                let fy = ((y - core.lly) / bh - 0.5).clamp(0.0, (bins - 1) as f64);
                let (bx, by) = (fx as usize, fy as usize);
                let (tx, ty) = (fx - bx as f64, fy - by as f64);
                let bx1 = (bx + 1).min(bins - 1);
                let by1 = (by + 1).min(bins - 1);
                let a = soa.area[i];
                part.push(((by * bins + bx) as u32, a * (1.0 - tx) * (1.0 - ty)));
                part.push(((by * bins + bx1) as u32, a * tx * (1.0 - ty)));
                part.push(((by1 * bins + bx) as u32, a * (1.0 - tx) * ty));
                part.push(((by1 * bins + bx1) as u32, a * tx * ty));
            });
            // Zero-mean right-hand side: the shifted Laplacian would
            // otherwise absorb the mean into a constant offset of ψ.
            let mean = grid.rho.iter().sum::<f64>() / nb as f64;
            for (r, q) in grid.sys.rhs_mut().iter_mut().zip(&grid.rho) {
                *r = q - mean;
            }
            grid.sys.solve_into_with_stats(
                &mut grid.psi,
                &mut grid.scratch,
                POISSON_ITERS,
                POISSON_TOL,
            );
            // Field E = −∇ψ by central differences (one-sided at the
            // borders), serial over the ≤128² bins.
            let psi = &grid.psi;
            let mut fmax = 0.0f64;
            for by in 0..bins {
                for bx in 0..bins {
                    let i = by * bins + bx;
                    let (xl, xr) = (
                        by * bins + bx.saturating_sub(1),
                        by * bins + (bx + 1).min(bins - 1),
                    );
                    let (yl, yr) = (
                        by.saturating_sub(1) * bins + bx,
                        (by + 1).min(bins - 1) * bins + bx,
                    );
                    let ex = psi[xl] - psi[xr];
                    let ey = psi[yl] - psi[yr];
                    grid.ex[i] = ex;
                    grid.ey[i] = ey;
                    fmax = fmax.max(ex.abs()).max(ey.abs());
                }
            }
            if fmax <= 0.0 || !fmax.is_finite() {
                break;
            }
            // Drift: bilinear-interpolated field at the cell position (the
            // scatter's mirror image), normalized so the strongest field
            // component moves a cell STEP_BINS bin widths.
            let step = STEP_BINS / fmax;
            let (ex, ey) = (&grid.ex, &grid.ey);
            cp_parallel::par_chunks_mut(&mut out, CELL_CHUNK, |_, _off, slice| {
                for p in slice.iter_mut() {
                    let fx = ((p.0 - core.llx) / bw - 0.5).clamp(0.0, (bins - 1) as f64);
                    let fy = ((p.1 - core.lly) / bh - 0.5).clamp(0.0, (bins - 1) as f64);
                    let (bx, by) = (fx as usize, fy as usize);
                    let (tx, ty) = (fx - bx as f64, fy - by as f64);
                    let bx1 = (bx + 1).min(bins - 1);
                    let by1 = (by + 1).min(bins - 1);
                    let (b00, b10) = (by * bins + bx, by * bins + bx1);
                    let (b01, b11) = (by1 * bins + bx, by1 * bins + bx1);
                    let lerp = |f: &[f64]| {
                        (1.0 - tx) * (1.0 - ty) * f[b00]
                            + tx * (1.0 - ty) * f[b10]
                            + (1.0 - tx) * ty * f[b01]
                            + tx * ty * f[b11]
                    };
                    let nx = p.0 + step * lerp(ex) * bw;
                    let ny = p.1 + step * lerp(ey) * bh;
                    *p = core.clamp(nx, ny);
                }
            });
        }
        // Field frame: the final sub-pass's charge grid. Free when off
        // (one relaxed load), and nothing recorded feeds back into the
        // drift, so placements are bitwise identical either way.
        let call = self.calls;
        self.calls += 1;
        if cp_trace::fields::recording() {
            if let Some(g) = self.grid.as_ref() {
                cp_trace::fields::record_with("edensity.rho", call, bins, bins, || {
                    g.rho.iter().map(|&v| v as f32).collect()
                });
            }
        }
        // Same tail as spread_soa: honor regions, core bounds, blockages.
        for (i, p) in out.iter_mut().enumerate() {
            let r = problem.region[i].unwrap_or(problem.core);
            *p = r.clamp(p.0, p.1);
            *p = problem.evict_from_blockages(p.0, p.1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Object;
    use crate::spreading::density_overflow_soa;
    use cp_graph::Hypergraph;
    use cp_netlist::floorplan::Rect;

    fn uniform_problem(n: usize) -> PlacementProblem {
        PlacementProblem {
            movable: vec![
                Object {
                    width: 1.0,
                    height: 1.0
                };
                n
            ],
            fixed: vec![],
            hypergraph: Hypergraph::new(n, vec![]),
            net_weights: vec![],
            core: Rect::new(0.0, 0.0, 100.0, 100.0),
            region: vec![None; n],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.5,
        }
    }

    #[test]
    fn edensity_reduces_overflow_and_stays_in_core() {
        let p = uniform_problem(400);
        let soa = PlacementSoa::from_problem(&p);
        // Cells crowded into one corner at distinct positions (identical
        // positions would see identical fields forever — in the real loop
        // the wirelength solve breaks that symmetry, here the start does).
        let piled: Vec<(f64, f64)> = (0..400)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                (
                    0.5 + (h % 1000) as f64 * 0.012,
                    0.5 + (h / 1000 % 1000) as f64 * 0.012,
                )
            })
            .collect();
        let before = density_overflow_soa(&p, &soa, &piled);
        let mut be = EDensityBackend::new();
        // A few spreading rounds, as the outer loop would drive them.
        let mut pos = piled.clone();
        for _ in 0..5 {
            pos = be.spread(&p, &soa, &pos);
        }
        let after = density_overflow_soa(&p, &soa, &pos);
        assert!(before > 0.5, "piled overflow {before}");
        assert!(after < before * 0.6, "after {after} vs before {before}");
        for &(x, y) in &pos {
            assert!(p.core.contains(x, y));
        }
    }

    #[test]
    fn edensity_is_thread_count_invariant() {
        let p = uniform_problem(300);
        let soa = PlacementSoa::from_problem(&p);
        let start: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                (2.0 + (h % 30) as f64, 3.0 + (h / 30 % 20) as f64)
            })
            .collect();
        let run = |threads: usize| {
            cp_parallel::with_threads(threads, || {
                let mut be = EDensityBackend::new();
                let a = be.spread(&p, &soa, &start);
                let b = be.spread(&p, &soa, &a);
                b.iter()
                    .map(|&(x, y)| (x.to_bits(), y.to_bits()))
                    .collect::<Vec<_>>()
            })
        };
        let t1 = run(1);
        assert_eq!(t1, run(4));
        assert_eq!(t1, run(8));
    }

    #[test]
    fn b2b_backend_forwards_to_spread_soa() {
        let p = uniform_problem(64);
        let soa = PlacementSoa::from_problem(&p);
        let piled = vec![(1.0, 1.0); 64];
        let via_backend = B2bBackend.spread(&p, &soa, &piled);
        let direct = spread_soa(&p, &soa, &piled);
        let bits = |v: &[(f64, f64)]| {
            v.iter()
                .map(|&(x, y)| (x.to_bits(), y.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&via_backend), bits(&direct));
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in [PlacerBackendKind::B2b, PlacerBackendKind::EDensity] {
            assert_eq!(PlacerBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PlacerBackendKind::parse("nope"), None);
    }
}
