//! Detailed placement: legality-preserving HPWL refinement.
//!
//! Two classic moves, applied in alternating passes:
//!
//! 1. **Optimal-region sliding** — each cell moves to the HPWL-optimal x
//!    inside the free span between its row neighbors (the median interval
//!    of its incident nets' bounding boxes), snapped to sites.
//! 2. **Adjacent swap** — neighboring cells in a row swap when that lowers
//!    HPWL and both still fit.
//!
//! Both moves keep the placement legal (cells on rows, no overlaps, inside
//! the core), so this runs after [`crate::legalize`].

use crate::problem::PlacementProblem;
use cp_netlist::floorplan::Floorplan;

/// Options for [`refine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetailedOptions {
    /// Slide+swap passes to run.
    pub passes: usize,
}

impl Default for DetailedOptions {
    fn default() -> Self {
        Self { passes: 2 }
    }
}

/// Refines a legalized placement in place; returns the HPWL improvement
/// (non-negative).
///
/// Multi-row objects (macros) are left untouched.
pub fn refine(
    problem: &PlacementProblem,
    floorplan: &Floorplan,
    positions: &mut [(f64, f64)],
    options: &DetailedOptions,
) -> f64 {
    let m = problem.movable_count();
    if m == 0 {
        return 0.0;
    }
    let _span = cp_trace::span_with(
        "place.refine",
        &[("passes", cp_trace::ArgValue::U(options.passes as u64))],
    );
    // Incidence: movable -> hyperedges.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); m];
    for e in 0..problem.hypergraph.edge_count() as u32 {
        for &v in problem.hypergraph.edge(e) {
            if (v as usize) < m {
                incident[v as usize].push(e);
            }
        }
    }
    // Per-net HPWL cache: moves touch only their incident nets, so cost
    // deltas come from recomputing those nets instead of the full design.
    let mut cache = crate::hpwl::IncrementalHpwl::new(problem, positions);
    let before = cache.total();
    // Rows of single-row cells, each sorted by x.
    let row_of = |y: f64| ((y - floorplan.core.lly) / floorplan.row_height).round() as i64;
    let mut rows: std::collections::BTreeMap<i64, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, &(_, y)) in positions.iter().take(m).enumerate() {
        if problem.movable[i].height <= floorplan.row_height * 1.5 {
            rows.entry(row_of(y)).or_default().push(i);
        }
    }
    for cells in rows.values_mut() {
        cells.sort_by(|&a, &b| positions[a].0.total_cmp(&positions[b].0));
    }
    let site = floorplan.site_width;
    let core = floorplan.core;
    for _ in 0..options.passes {
        // Pass 1: optimal-region sliding.
        for cells in rows.values() {
            for (k, &i) in cells.iter().enumerate() {
                let lo_bound = if k == 0 {
                    core.llx
                } else {
                    let p = cells[k - 1];
                    positions[p].0 + problem.movable[p].width
                };
                let hi_bound = if k + 1 == cells.len() {
                    core.urx - problem.movable[i].width
                } else {
                    positions[cells[k + 1]].0 - problem.movable[i].width
                };
                if hi_bound < lo_bound {
                    continue;
                }
                let target = optimal_x(problem, positions, &incident[i], i);
                let snapped = core.llx
                    + ((target.clamp(lo_bound, hi_bound) - core.llx) / site).round() * site;
                let x = snapped.clamp(lo_bound, hi_bound);
                if x != positions[i].0 {
                    positions[i].0 = x;
                    cache.update_nets(problem, positions, &incident[i]);
                }
            }
        }
        // Pass 2: adjacent swaps (row lists stay sorted by swapping their
        // entries together with the positions).
        for cells in rows.values_mut() {
            for k in 0..cells.len().saturating_sub(1) {
                let (a, b) = (cells[k], cells[k + 1]);
                let (wa, wb) = (problem.movable[a].width, problem.movable[b].width);
                let (xa, xb) = (positions[a].0, positions[b].0);
                // Swapped layout: b takes a's slot, a keeps the old gap.
                let (nxb, nxa) = (xa, xb + wb - wa);
                if nxa + wa > core.urx + 1e-9 || nxa < nxb + wb - 1e-9 {
                    continue;
                }
                // Touched nets, in the same sorted-deduped order the old
                // full local recompute used.
                let mut touched: Vec<u32> = incident[a]
                    .iter()
                    .chain(incident[b].iter())
                    .copied()
                    .collect();
                touched.sort_unstable();
                touched.dedup();
                let cost_before: f64 = touched
                    .iter()
                    .map(|&e| problem.net_weights[e as usize] * cache.net(e))
                    .sum();
                positions[a].0 = nxa;
                positions[b].0 = nxb;
                let fresh: Vec<f64> = touched
                    .iter()
                    .map(|&e| crate::hpwl::edge_hpwl(problem, e, positions))
                    .collect();
                let cost_after: f64 = touched
                    .iter()
                    .zip(&fresh)
                    .map(|(&e, &h)| problem.net_weights[e as usize] * h)
                    .sum();
                if cost_after >= cost_before {
                    positions[a].0 = xa;
                    positions[b].0 = xb;
                } else {
                    cache.update_nets(problem, positions, &touched);
                    cells.swap(k, k + 1);
                }
            }
        }
    }
    (before - cache.total()).max(0.0)
}

/// The x minimizing the cell's incident-net HPWL: the median of the other
/// pins' interval bounds.
fn optimal_x(
    problem: &PlacementProblem,
    positions: &[(f64, f64)],
    edges: &[u32],
    cell: usize,
) -> f64 {
    let mut bounds = Vec::with_capacity(edges.len() * 2);
    for &e in edges {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in problem.hypergraph.edge(e) {
            if v as usize == cell {
                continue;
            }
            let (x, _) = problem.vertex_pos(v, positions);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo.is_finite() {
            bounds.push(lo);
            bounds.push(hi);
        }
    }
    if bounds.is_empty() {
        return positions[cell].0;
    }
    bounds.sort_by(f64::total_cmp);
    bounds[bounds.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{GlobalPlacer, PlacerOptions};
    use crate::legalize::legalize;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::Floorplan;

    fn placed() -> (PlacementProblem, Floorplan, Vec<(f64, f64)>) {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(44)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        legalize(&p, &fp, &mut r.positions).expect("legalization succeeds");
        (p, fp, r.positions)
    }

    #[test]
    fn refinement_never_hurts_hpwl() {
        let (p, fp, mut pos) = placed();
        let before = crate::hpwl::raw_hpwl(&p, &pos);
        let gain = refine(&p, &fp, &mut pos, &DetailedOptions::default());
        let after = crate::hpwl::raw_hpwl(&p, &pos);
        assert!(gain >= 0.0);
        assert!(after <= before + 1e-6, "HPWL rose: {before} -> {after}");
        assert!(
            gain > 0.0,
            "expected some improvement on a fresh legalization"
        );
    }

    #[test]
    fn refinement_preserves_legality() {
        let (p, fp, mut pos) = placed();
        refine(&p, &fp, &mut pos, &DetailedOptions { passes: 3 });
        // On rows, inside core.
        for (i, &(x, y)) in pos.iter().enumerate() {
            let off = (y - fp.core.lly) / fp.row_height;
            assert!((off - off.round()).abs() < 1e-6, "cell {i} off-row");
            assert!(x >= fp.core.llx - 1e-6);
            assert!(x + p.movable[i].width <= fp.core.urx + 1e-6);
        }
        // No overlap per row.
        let mut by_row: std::collections::HashMap<i64, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for (i, &(x, y)) in pos.iter().enumerate() {
            by_row
                .entry((y * 1000.0).round() as i64)
                .or_default()
                .push((x, x + p.movable[i].width));
        }
        for (_, mut spans) in by_row {
            spans.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-6, "overlap {w:?}");
            }
        }
    }

    #[test]
    fn refinement_is_deterministic() {
        let (p, fp, pos0) = placed();
        let mut a = pos0.clone();
        let mut b = pos0;
        refine(&p, &fp, &mut a, &DetailedOptions::default());
        refine(&p, &fp, &mut b, &DetailedOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_problem_is_fine() {
        let (p, fp, _) = placed();
        let mut empty = p.clone();
        empty.movable.clear();
        empty.region.clear();
        empty.hypergraph = cp_graph::Hypergraph::new(empty.fixed.len(), vec![]);
        empty.net_weights.clear();
        let mut pos: Vec<(f64, f64)> = Vec::new();
        assert_eq!(
            refine(&empty, &fp, &mut pos, &DetailedOptions::default()),
            0.0
        );
    }
}
