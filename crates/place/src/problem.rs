//! The generic placement problem: movable objects, fixed terminals, a
//! hypergraph and a core region.
//!
//! Both flat netlists (cells movable, ports fixed) and clustered netlists
//! (cluster macros movable, ports fixed) lower into this form, so one
//! placement engine serves the whole flow.

use cp_graph::Hypergraph;
use cp_netlist::clustered::ClusteredNetlist;
use cp_netlist::floorplan::{Floorplan, Rect};

use cp_netlist::netlist::Netlist;

/// A movable object (standard cell or cluster macro).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Object {
    /// Width in µm.
    pub width: f64,
    /// Height in µm.
    pub height: f64,
}

impl Object {
    /// Footprint area in µm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// A placement problem instance.
///
/// Hypergraph vertices `0..movable.len()` are the movable objects;
/// `movable.len()..` are fixed terminals with known positions.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementProblem {
    /// Movable objects.
    pub movable: Vec<Object>,
    /// Positions of fixed terminals (hypergraph vertices after movables).
    pub fixed: Vec<(f64, f64)>,
    /// Connectivity over `movable.len() + fixed.len()` vertices.
    pub hypergraph: Hypergraph,
    /// Per-hyperedge weights.
    pub net_weights: Vec<f64>,
    /// The placeable core region.
    pub core: Rect,
    /// Optional region constraint per movable object (Innovus-style).
    pub region: Vec<Option<Rect>>,
    /// Optional seed positions per movable object (incremental mode).
    pub seed_positions: Option<Vec<(f64, f64)>>,
    /// Preplaced macro obstructions (no movable may end up inside).
    pub blockages: Vec<Rect>,
    /// Density target inside bins (fraction of bin capacity).
    pub density_target: f64,
}

impl PlacementProblem {
    /// Lowers a flat netlist onto a floorplan: cells movable, ports fixed,
    /// unit net weights.
    pub fn from_netlist(netlist: &Netlist, floorplan: &Floorplan) -> Self {
        let movable: Vec<Object> = netlist
            .cells()
            .iter()
            .map(|c| {
                let m = netlist.library().cell(c.ty);
                Object {
                    width: m.width,
                    height: m.height,
                }
            })
            .collect();
        let hypergraph = netlist.to_hypergraph();
        let net_weights = vec![1.0; hypergraph.edge_count()];
        let n = movable.len();
        Self {
            movable,
            fixed: floorplan.port_positions.clone(),
            hypergraph,
            net_weights,
            core: floorplan.core,
            region: vec![None; n],
            seed_positions: None,
            blockages: floorplan.blockages.clone(),
            density_target: floorplan.utilization.min(0.95),
        }
    }

    /// Lowers a clustered netlist onto the *original* floorplan: cluster
    /// macros movable (footprints from their shapes), ports fixed, carrying
    /// the clustered net weights (including any IO scaling).
    pub fn from_clustered(clustered: &ClusteredNetlist, floorplan: &Floorplan) -> Self {
        let movable: Vec<Object> = (0..clustered.cluster_count() as u32)
            .map(|c| {
                let (width, height) = clustered.dims(c);
                Object { width, height }
            })
            .collect();
        let n = movable.len();
        Self {
            movable,
            fixed: floorplan.port_positions.clone(),
            hypergraph: clustered.hypergraph().clone(),
            net_weights: clustered.net_weights().to_vec(),
            core: floorplan.core,
            region: vec![None; n],
            seed_positions: None,
            blockages: floorplan.blockages.clone(),
            density_target: 0.95,
        }
    }

    /// Number of movable objects.
    pub fn movable_count(&self) -> usize {
        self.movable.len()
    }

    /// Total movable area in µm².
    pub fn movable_area(&self) -> f64 {
        self.movable.iter().map(Object::area).sum()
    }

    /// Sets seed positions, switching the placer to incremental mode.
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len() != movable_count()`.
    pub fn with_seeds(mut self, seeds: Vec<(f64, f64)>) -> Self {
        assert_eq!(seeds.len(), self.movable.len(), "one seed per movable");
        self.seed_positions = Some(seeds);
        self
    }

    /// Constrains movable `i` into `rect` (clamped every iteration).
    pub fn set_region(&mut self, i: usize, rect: Rect) {
        self.region[i] = Some(rect);
    }

    /// Area of `rect` not covered by this problem's blockages.
    pub fn free_area_in(&self, rect: &Rect) -> f64 {
        let mut blocked = 0.0;
        for b in &self.blockages {
            let w = (rect.urx.min(b.urx) - rect.llx.max(b.llx)).max(0.0);
            let h = (rect.ury.min(b.ury) - rect.lly.max(b.lly)).max(0.0);
            blocked += w * h;
        }
        (rect.area() - blocked).max(0.0)
    }

    /// Pushes a point out of any blockage to the nearest free edge.
    pub fn evict_from_blockages(&self, x: f64, y: f64) -> (f64, f64) {
        for b in &self.blockages {
            if x > b.llx && x < b.urx && y > b.lly && y < b.ury {
                // Cheapest of the four walls.
                let candidates = [
                    (b.llx, y, x - b.llx),
                    (b.urx, y, b.urx - x),
                    (x, b.lly, y - b.lly),
                    (x, b.ury, b.ury - y),
                ];
                let mut nearest = candidates[0];
                for c in &candidates[1..] {
                    if c.2 < nearest.2 {
                        nearest = *c;
                    }
                }
                let (nx, ny) = self.core.clamp(nearest.0, nearest.1);
                return (nx, ny);
            }
        }
        (x, y)
    }

    /// Position of a vertex under a candidate movable placement.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_pos(&self, v: u32, positions: &[(f64, f64)]) -> (f64, f64) {
        let v = v as usize;
        if v < self.movable.len() {
            positions[v]
        } else {
            self.fixed[v - self.movable.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn flat() -> (Netlist, Floorplan) {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(1)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        (n, fp)
    }

    #[test]
    fn from_netlist_dimensions() {
        let (n, fp) = flat();
        let p = PlacementProblem::from_netlist(&n, &fp);
        assert_eq!(p.movable_count(), n.cell_count());
        assert_eq!(p.fixed.len(), n.port_count());
        assert_eq!(p.hypergraph.vertex_count(), n.cell_count() + n.port_count());
        assert!((p.movable_area() - n.total_cell_area()).abs() < 1e-6);
    }

    #[test]
    fn from_clustered_uses_shapes() {
        let (n, fp) = flat();
        let half = n.cell_count() / 2;
        let labels: Vec<u32> = (0..n.cell_count()).map(|i| u32::from(i >= half)).collect();
        let mut c = ClusteredNetlist::from_assignment(&n, &labels);
        c.set_shape(0, cp_netlist::ClusterShape::new(1.5, 0.8));
        let p = PlacementProblem::from_clustered(&c, &fp);
        assert_eq!(p.movable_count(), 2);
        let ob = p.movable[0];
        assert!((ob.height / ob.width - 1.5).abs() < 1e-9);
    }

    #[test]
    fn vertex_pos_dispatches() {
        let (n, fp) = flat();
        let p = PlacementProblem::from_netlist(&n, &fp);
        let pos = vec![(1.0, 2.0); p.movable_count()];
        assert_eq!(p.vertex_pos(0, &pos), (1.0, 2.0));
        let port_v = p.movable_count() as u32;
        assert_eq!(p.vertex_pos(port_v, &pos), fp.port_positions[0]);
    }

    #[test]
    #[should_panic(expected = "one seed per movable")]
    fn wrong_seed_count_panics() {
        let (n, fp) = flat();
        let p = PlacementProblem::from_netlist(&n, &fp);
        let _ = p.with_seeds(vec![(0.0, 0.0)]);
    }
}
