//! The global placement loop (SimPL-style lower/upper bound iteration).

use crate::backend::PlacerBackendKind;
use crate::error::{BestSnapshot, PlaceError};
use crate::hpwl::raw_hpwl_soa;
use crate::problem::PlacementProblem;
use crate::soa::{PlacementSoa, VertexCoords};
use crate::solver::{Anchors, Axis, B2bRebuilder, CgOptions, CgScratch};
use crate::spreading::{density_overflow_soa, displacement_grid, overflow_grid_soa};
use cp_resilience::RunControl;
use cp_trace::ArgValue;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Tuning knobs for [`GlobalPlacer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// Iterations for a from-scratch placement.
    pub max_iterations: usize,
    /// Iterations when seed positions are provided (incremental mode) —
    /// the source of the clustered flow's runtime win.
    pub incremental_iterations: usize,
    /// Conjugate-gradient iterations per axis solve.
    pub cg_iterations: usize,
    /// Stop once density overflow drops below this.
    pub target_overflow: f64,
    /// Anchor pseudo-net weight ramp per iteration.
    pub anchor_base: f64,
    /// Constant anchor weight toward seed positions (incremental mode).
    pub seed_anchor: f64,
    /// RNG seed for the initial scatter.
    pub seed: u64,
    /// On divergence (non-finite solve or HPWL blow-up), revert to the best
    /// snapshot and return it instead of erroring (RePlAce-style recovery).
    pub revert_if_diverge: bool,
    /// HPWL growth over the best snapshot counted as a blow-up (while
    /// overflow is also regressing).
    pub divergence_factor: f64,
    /// Test hook: poison the solver output with NaN at this iteration to
    /// exercise the divergence path. `None` in normal operation.
    pub fault_nan_at_iteration: Option<usize>,
    /// Which spreading backend drives the upper-bound step. The default
    /// ([`PlacerBackendKind::B2b`]) is bit-identical to the pre-trait
    /// placer.
    pub backend: PlacerBackendKind,
    /// Per-solve CG configuration for the axis solves. The default is
    /// bit-identical to the pre-refactor solver; `precondition` swaps in
    /// the IC(0) preconditioner.
    pub cg: CgOptions,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            incremental_iterations: 12,
            cg_iterations: 60,
            target_overflow: 0.08,
            anchor_base: 0.015,
            seed_anchor: 0.08,
            seed: 7,
            revert_if_diverge: true,
            divergence_factor: 4.0,
            fault_nan_at_iteration: None,
            backend: PlacerBackendKind::default(),
            cg: CgOptions::default(),
        }
    }
}

/// A finished placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementResult {
    /// One position per movable object, inside the core.
    pub positions: Vec<(f64, f64)>,
    /// Unweighted HPWL of the result, µm.
    pub hpwl: f64,
    /// Lower/upper-bound iterations performed.
    pub iterations: usize,
    /// Final density overflow.
    pub overflow: f64,
    /// Wall-clock seconds spent in `place`.
    pub runtime: f64,
    /// `true` when the loop diverged and the result is the reverted best
    /// snapshot rather than the last iterate.
    pub diverged: bool,
}

/// The best finite iterate seen so far, for divergence recovery.
struct Snapshot {
    positions: Vec<(f64, f64)>,
    hpwl: f64,
    overflow: f64,
}

fn all_finite(pos: &[(f64, f64)]) -> bool {
    pos.iter().all(|p| p.0.is_finite() && p.1.is_finite())
}

/// The global placer. See the crate docs for the algorithm outline.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    options: PlacerOptions,
}

impl GlobalPlacer {
    /// Creates a placer with the given options.
    pub fn new(options: PlacerOptions) -> Self {
        Self { options }
    }

    /// The active options.
    pub fn options(&self) -> &PlacerOptions {
        &self.options
    }

    /// Places the problem. Incremental mode engages automatically when the
    /// problem carries seed positions.
    ///
    /// # Errors
    ///
    /// - [`PlaceError::DegenerateCore`] when the core has non-finite or
    ///   non-positive dimensions.
    /// - [`PlaceError::InvalidInput`] when seed positions don't match the
    ///   movable count.
    /// - [`PlaceError::NonFinite`] when the inputs carry NaN/Inf.
    /// - [`PlaceError::Diverged`] when the loop blows up and
    ///   `revert_if_diverge` is off. With it on (the default), divergence
    ///   reverts to the best snapshot and returns `Ok` with
    ///   [`PlacementResult::diverged`] set.
    pub fn place(&self, problem: &PlacementProblem) -> Result<PlacementResult, PlaceError> {
        self.place_impl(problem, None)
    }

    /// [`place`](Self::place) under a [`RunControl`]: the control is
    /// checked once per outer iteration (site
    /// [`cp_resilience::sites::PLACE_OUTER`]), so cancellation, deadline,
    /// and memory-budget interrupts land at a deterministic loop boundary.
    ///
    /// # Errors
    ///
    /// Everything [`place`](Self::place) can return, plus
    /// [`PlaceError::Interrupted`] carrying the best finite iterate seen
    /// so far so partial progress survives.
    pub fn place_with_control(
        &self,
        problem: &PlacementProblem,
        control: &RunControl,
    ) -> Result<PlacementResult, PlaceError> {
        self.place_impl(problem, Some(control))
    }

    fn place_impl(
        &self,
        problem: &PlacementProblem,
        control: Option<&RunControl>,
    ) -> Result<PlacementResult, PlaceError> {
        let start = Instant::now();
        let m = problem.movable_count();
        let _span = cp_trace::span_with(
            "place.solve",
            &[
                ("movables", ArgValue::U(m as u64)),
                (
                    "mode",
                    ArgValue::S(if problem.seed_positions.is_some() {
                        "incremental"
                    } else {
                        "scratch"
                    }),
                ),
                ("backend", ArgValue::S(self.options.backend.name())),
            ],
        );
        let core = problem.core;
        if !(core.width().is_finite() && core.height().is_finite())
            || core.width() <= 0.0
            || core.height() <= 0.0
        {
            return Err(PlaceError::DegenerateCore {
                width: core.width(),
                height: core.height(),
            });
        }
        if let Some(seeds) = &problem.seed_positions {
            if seeds.len() != m {
                return Err(PlaceError::InvalidInput {
                    reason: format!("{} seed positions for {m} movables", seeds.len()),
                });
            }
            if !all_finite(seeds) {
                return Err(PlaceError::NonFinite {
                    stage: "seed positions",
                });
            }
        }
        if !all_finite(&problem.fixed) {
            return Err(PlaceError::NonFinite {
                stage: "fixed terminal positions",
            });
        }
        if m == 0 {
            return Ok(PlacementResult {
                positions: Vec::new(),
                hpwl: 0.0,
                iterations: 0,
                overflow: 0.0,
                runtime: start.elapsed().as_secs_f64(),
                diverged: false,
            });
        }
        let opt = &self.options;
        let incremental = problem.seed_positions.is_some();
        let iters = if incremental {
            opt.incremental_iterations
        } else {
            opt.max_iterations
        };

        // Initial positions: seeds, or a random scatter in the core.
        let mut rng = StdRng::seed_from_u64(opt.seed);
        let mut pos: Vec<(f64, f64)> = match &problem.seed_positions {
            Some(seeds) => seeds.clone(),
            None => (0..m)
                .map(|_| {
                    (
                        core.llx + rng.random::<f64>() * core.width(),
                        core.lly + rng.random::<f64>() * core.height(),
                    )
                })
                .collect(),
        };
        self.clamp(problem, &mut pos);
        let seeds = problem.seed_positions.clone();
        // SoA views shared by every per-iteration kernel: contiguous cell
        // areas for spreading/density, flat per-axis coordinates for HPWL.
        let soa = PlacementSoa::from_problem(problem);
        let mut coords = VertexCoords::new(problem);
        // One backend instance per placement run: any internal state (the
        // eDensity grid, warm-started potential) is scoped to this call,
        // keeping repeated and resumed runs bitwise-deterministic.
        let mut backend = opt.backend.instantiate();
        let mut upper = backend.spread(problem, &soa, &pos);
        coords.set_movable(&upper);
        let mut overflow = density_overflow_soa(problem, &soa, &upper);
        let mut hpwl = raw_hpwl_soa(problem, &coords);
        let mut done = 0;
        let mut best = if all_finite(&upper) && hpwl.is_finite() {
            Some(Snapshot {
                positions: upper.clone(),
                hpwl,
                overflow,
            })
        } else {
            None
        };
        let mut diverged = false;

        let mut anchor_w: Vec<f64> = vec![0.0; m];
        // Persistent per-axis B2B assemblers, CG scratch and coordinate
        // buffers: the solve path allocates nothing per outer iteration,
        // and nets whose pins did not move between iterations reuse their
        // cached B2B pairs instead of re-linearizing.
        let mut rb_x = B2bRebuilder::new(Axis::X);
        let mut rb_y = B2bRebuilder::new(Axis::Y);
        let mut scratch = CgScratch::default();
        let mut tx: Vec<f64> = vec![0.0; m];
        let mut ty: Vec<f64> = vec![0.0; m];
        let mut sx: Vec<f64> = vec![0.0; m];
        let mut sy: Vec<f64> = vec![0.0; m];
        for it in 0..iters {
            if let Some(ctl) = control {
                if let Err(interrupt) = ctl.check(cp_resilience::sites::PLACE_OUTER) {
                    cp_trace::instant(
                        "recovery.place_interrupted",
                        &[("iteration", ArgValue::U(it as u64))],
                    );
                    return Err(PlaceError::Interrupted {
                        interrupt,
                        iteration: it,
                        best: best.take().map(|b| BestSnapshot {
                            positions: b.positions,
                            hpwl: b.hpwl,
                        }),
                    });
                }
            }
            done = it + 1;
            // Anchor targets: spread positions (weight ramping up), blended
            // with the seed pull in incremental mode.
            let ramp = opt.anchor_base * (it as f64 + 1.0);
            for i in 0..m {
                let mut w_sum = ramp;
                let mut t = upper[i];
                if let Some(s) = &seeds {
                    let sw = opt.seed_anchor;
                    t = (
                        (t.0 * ramp + s[i].0 * sw) / (ramp + sw),
                        (t.1 * ramp + s[i].1 * sw) / (ramp + sw),
                    );
                    w_sum += sw;
                }
                anchor_w[i] = w_sum;
                upper[i] = t;
            }
            for i in 0..m {
                tx[i] = upper[i].0;
                ty[i] = upper[i].1;
                sx[i] = pos[i].0;
                sy[i] = pos[i].1;
            }
            rb_x.rebuild(
                problem,
                &pos,
                Some(Anchors {
                    target: &tx,
                    weight: &anchor_w,
                }),
            );
            let cg_x = rb_x.system().solve_into_with_options(
                &mut sx,
                &mut scratch,
                opt.cg_iterations,
                1e-6,
                opt.cg,
            );
            rb_y.rebuild(
                problem,
                &pos,
                Some(Anchors {
                    target: &ty,
                    weight: &anchor_w,
                }),
            );
            let cg_y = rb_y.system().solve_into_with_options(
                &mut sy,
                &mut scratch,
                opt.cg_iterations,
                1e-6,
                opt.cg,
            );
            for i in 0..m {
                pos[i] = (sx[i], sy[i]);
            }
            if opt.fault_nan_at_iteration == Some(it)
                || cp_resilience::faultpoint!(cp_resilience::sites::SOLVER_NAN)
            {
                pos[0].0 = f64::NAN;
            }
            // Guard rail 1: the linear solve must stay finite.
            if !all_finite(&pos) {
                cp_trace::instant("place.revert", &[("iteration", ArgValue::U(it as u64))]);
                match self.revert(best.take(), &mut upper, &mut hpwl, &mut overflow) {
                    true => {
                        diverged = true;
                        break;
                    }
                    false => return Err(PlaceError::NonFinite { stage: "solver" }),
                }
            }
            self.clamp(problem, &mut pos);
            upper = backend.spread(problem, &soa, &pos);
            coords.set_movable(&upper);
            overflow = density_overflow_soa(problem, &soa, &upper);
            hpwl = raw_hpwl_soa(problem, &coords);
            cp_trace::series(
                "place.outer",
                it as u64,
                &[
                    ("hpwl", hpwl),
                    ("overflow", overflow),
                    ("cg_x_iters", cg_x.iterations as f64),
                    ("cg_x_residual", cg_x.relative_residual),
                    ("cg_y_iters", cg_y.iterations as f64),
                    ("cg_y_residual", cg_y.relative_residual),
                ],
            );
            // Field frames: the spatial view behind the scalar series row
            // — the per-bin density overflow of the spread (upper-bound)
            // positions, and where the spreader displaced cells away from
            // the lower bound. Free when off (one relaxed load); nothing
            // recorded feeds back into the loop.
            if cp_trace::fields::recording() {
                let (bins, grid) = overflow_grid_soa(problem, &soa, &upper);
                cp_trace::fields::record_with(
                    "place.density_overflow",
                    it as u64,
                    bins,
                    bins,
                    || grid,
                );
                let (bins, grid) = displacement_grid(problem, &pos, &upper);
                cp_trace::fields::record_with("place.displacement", it as u64, bins, bins, || grid);
            }
            // Guard rail 2: HPWL blowing up while overflow regresses means
            // the anchors lost control — revert rather than walk off.
            let blown_up = match &best {
                Some(b) => {
                    !(hpwl.is_finite() && overflow.is_finite())
                        || (hpwl > b.hpwl * opt.divergence_factor && overflow > b.overflow + 0.1)
                }
                None => !(hpwl.is_finite() && overflow.is_finite()),
            };
            if blown_up {
                cp_trace::instant("place.revert", &[("iteration", ArgValue::U(it as u64))]);
                let best_hpwl = best.as_ref().map_or(f64::NAN, |b| b.hpwl);
                match self.revert(best.take(), &mut upper, &mut hpwl, &mut overflow) {
                    true => {
                        diverged = true;
                        break;
                    }
                    false => {
                        return Err(PlaceError::Diverged {
                            iteration: it,
                            best_hpwl,
                        })
                    }
                }
            }
            let better = match &best {
                Some(b) => {
                    overflow < b.overflow - 1e-12
                        || (overflow <= b.overflow + 0.02 && hpwl < b.hpwl)
                }
                None => true,
            };
            if better {
                best = Some(Snapshot {
                    positions: upper.clone(),
                    hpwl,
                    overflow,
                });
            }
            if overflow <= opt.target_overflow {
                break;
            }
        }
        Ok(PlacementResult {
            positions: upper,
            hpwl,
            iterations: done,
            overflow,
            runtime: start.elapsed().as_secs_f64(),
            diverged,
        })
    }

    /// Restores the best snapshot into the loop state. Returns whether the
    /// revert path is available (enabled and a snapshot exists).
    fn revert(
        &self,
        best: Option<Snapshot>,
        upper: &mut Vec<(f64, f64)>,
        hpwl: &mut f64,
        overflow: &mut f64,
    ) -> bool {
        if !self.options.revert_if_diverge {
            return false;
        }
        match best {
            Some(b) => {
                *upper = b.positions;
                *hpwl = b.hpwl;
                *overflow = b.overflow;
                true
            }
            None => false,
        }
    }

    fn clamp(&self, problem: &PlacementProblem, pos: &mut [(f64, f64)]) {
        for (i, p) in pos.iter_mut().enumerate() {
            let r = problem.region[i].unwrap_or(problem.core);
            *p = r.clamp(p.0, p.1);
            *p = problem.evict_from_blockages(p.0, p.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpwl::raw_hpwl;
    use cp_netlist::floorplan::Floorplan;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::netlist::Netlist;

    fn flat(scale: f64, seed: u64) -> (Netlist, Floorplan) {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(scale)
            .seed(seed)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        (n, fp)
    }

    #[test]
    fn placement_beats_random_scatter() {
        let (n, fp) = flat(0.01, 1);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut rng = StdRng::seed_from_u64(99);
        let random: Vec<(f64, f64)> = (0..p.movable_count())
            .map(|_| {
                (
                    fp.core.llx + rng.random::<f64>() * fp.core.width(),
                    fp.core.lly + rng.random::<f64>() * fp.core.height(),
                )
            })
            .collect();
        let random_hpwl = raw_hpwl(&p, &random);
        let result = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        assert!(
            result.hpwl < random_hpwl * 0.8,
            "placed {} vs random {random_hpwl}",
            result.hpwl
        );
        for &(x, y) in &result.positions {
            assert!(fp.core.contains(x, y));
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let (n, fp) = flat(0.005, 2);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let a = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        let b = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn incremental_mode_is_faster_and_respects_seeds() {
        let (n, fp) = flat(0.01, 3);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let full = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        // Seed with the full result: incremental should converge quickly to
        // a similar-quality placement.
        let p2 = p.clone().with_seeds(full.positions.clone());
        let inc = GlobalPlacer::new(PlacerOptions::default())
            .place(&p2)
            .expect("placement succeeds");
        assert!(inc.iterations <= PlacerOptions::default().incremental_iterations);
        assert!(
            inc.hpwl < full.hpwl * 1.25,
            "incremental {} vs full {}",
            inc.hpwl,
            full.hpwl
        );
    }

    #[test]
    fn overflow_is_controlled() {
        let (n, fp) = flat(0.01, 4);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        assert!(r.overflow < 0.4, "overflow {}", r.overflow);
    }

    #[test]
    fn region_constraint_is_honored() {
        let (n, fp) = flat(0.005, 5);
        let mut p = PlacementProblem::from_netlist(&n, &fp);
        let r = cp_netlist::floorplan::Rect::new(
            fp.core.llx,
            fp.core.lly,
            fp.core.width() / 4.0,
            fp.core.height() / 4.0,
        );
        for i in 0..10.min(p.movable_count()) {
            p.set_region(i, r);
        }
        let res = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        for i in 0..10.min(p.movable_count()) {
            let (x, y) = res.positions[i];
            assert!(r.contains(x, y), "cell {i} at ({x}, {y}) escaped region");
        }
    }

    #[test]
    fn empty_problem_is_ok() {
        let (n, fp) = flat(0.005, 6);
        let mut p = PlacementProblem::from_netlist(&n, &fp);
        p.movable.clear();
        p.region.clear();
        // Rebuild a consistent empty hypergraph.
        p.hypergraph = cp_graph::Hypergraph::new(p.fixed.len(), vec![]);
        p.net_weights.clear();
        let r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("empty problem places");
        assert_eq!(r.positions.len(), 0);
        assert_eq!(r.hpwl, 0.0);
    }

    #[test]
    fn injected_nan_reverts_to_best_snapshot() {
        let (n, fp) = flat(0.01, 7);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let clean = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("clean run succeeds");
        let faulty = GlobalPlacer::new(PlacerOptions {
            fault_nan_at_iteration: Some(6),
            ..PlacerOptions::default()
        })
        .place(&p)
        .expect("revert recovers from the injected NaN");
        assert!(faulty.diverged);
        assert!(faulty.hpwl.is_finite());
        assert!(faulty
            .positions
            .iter()
            .all(|&(x, y)| { x.is_finite() && y.is_finite() && fp.core.contains(x, y) }));
        // The reverted snapshot can't beat the clean run's final result by
        // much, nor be wildly worse: it is a genuine mid-run iterate.
        assert!(
            faulty.hpwl < clean.hpwl * 3.0,
            "reverted {} vs clean {}",
            faulty.hpwl,
            clean.hpwl
        );
    }

    #[test]
    fn injected_nan_errors_with_revert_disabled() {
        let (n, fp) = flat(0.01, 7);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let err = GlobalPlacer::new(PlacerOptions {
            fault_nan_at_iteration: Some(3),
            revert_if_diverge: false,
            ..PlacerOptions::default()
        })
        .place(&p)
        .expect_err("NaN without revert must error");
        assert_eq!(err, crate::error::PlaceError::NonFinite { stage: "solver" });
    }

    #[test]
    fn cancellation_mid_loop_returns_best_snapshot() {
        let (n, fp) = flat(0.01, 9);
        let p = PlacementProblem::from_netlist(&n, &fp);
        // The placer checks PLACE_OUTER once per iteration; cancelling
        // after 5 checks interrupts at the start of iteration 5 (0-based)
        // with the best snapshot from the first 5 iterations attached.
        let ctl = RunControl::unlimited().cancel_after_checks(5);
        let err = GlobalPlacer::new(PlacerOptions::default())
            .place_with_control(&p, &ctl)
            .expect_err("cancelled run must be interrupted");
        match err {
            PlaceError::Interrupted {
                interrupt,
                iteration,
                best,
            } => {
                assert_eq!(interrupt.kind, cp_resilience::InterruptKind::Cancelled);
                assert_eq!(iteration, 4);
                let best = best.expect("5 finished iterations leave a snapshot");
                assert!(best.hpwl.is_finite());
                assert_eq!(best.positions.len(), p.movable_count());
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_interrupts_before_first_iteration() {
        let (n, fp) = flat(0.005, 10);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let ctl = RunControl::unlimited().with_deadline(std::time::Duration::ZERO);
        let err = GlobalPlacer::new(PlacerOptions::default())
            .place_with_control(&p, &ctl)
            .expect_err("expired deadline must interrupt");
        match err {
            PlaceError::Interrupted {
                interrupt,
                iteration,
                ..
            } => {
                assert_eq!(
                    interrupt.kind,
                    cp_resilience::InterruptKind::DeadlineExceeded
                );
                assert_eq!(iteration, 0);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_control_matches_plain_place_bitwise() {
        let (n, fp) = flat(0.005, 11);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let plain = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        let controlled = GlobalPlacer::new(PlacerOptions::default())
            .place_with_control(&p, &RunControl::unlimited())
            .expect("placement succeeds");
        assert_eq!(plain.positions, controlled.positions);
        assert_eq!(plain.hpwl.to_bits(), controlled.hpwl.to_bits());
    }

    #[test]
    fn bad_inputs_are_rejected_not_panicked() {
        let (n, fp) = flat(0.005, 8);
        let p = PlacementProblem::from_netlist(&n, &fp);
        // Degenerate core.
        let mut degenerate = p.clone();
        degenerate.core = cp_netlist::floorplan::Rect::new(0.0, 0.0, 0.0, 10.0);
        assert!(matches!(
            GlobalPlacer::default().place(&degenerate),
            Err(crate::error::PlaceError::DegenerateCore { .. })
        ));
        // Seed length mismatch (bypassing with_seeds' assert).
        let mut short_seeds = p.clone();
        short_seeds.seed_positions = Some(vec![(0.0, 0.0)]);
        assert!(matches!(
            GlobalPlacer::default().place(&short_seeds),
            Err(crate::error::PlaceError::InvalidInput { .. })
        ));
        // Non-finite seeds.
        let mut nan_seeds = p.clone();
        nan_seeds.seed_positions = Some(vec![(f64::NAN, 0.0); p.movable_count()]);
        assert!(matches!(
            GlobalPlacer::default().place(&nan_seeds),
            Err(crate::error::PlaceError::NonFinite { .. })
        ));
    }
}
