//! The global placement loop (SimPL-style lower/upper bound iteration).

use crate::hpwl::raw_hpwl;
use crate::problem::PlacementProblem;
use crate::solver::{Anchors, Axis, B2bSystem};
use crate::spreading::{density_overflow, spread};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Tuning knobs for [`GlobalPlacer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// Iterations for a from-scratch placement.
    pub max_iterations: usize,
    /// Iterations when seed positions are provided (incremental mode) —
    /// the source of the clustered flow's runtime win.
    pub incremental_iterations: usize,
    /// Conjugate-gradient iterations per axis solve.
    pub cg_iterations: usize,
    /// Stop once density overflow drops below this.
    pub target_overflow: f64,
    /// Anchor pseudo-net weight ramp per iteration.
    pub anchor_base: f64,
    /// Constant anchor weight toward seed positions (incremental mode).
    pub seed_anchor: f64,
    /// RNG seed for the initial scatter.
    pub seed: u64,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            incremental_iterations: 12,
            cg_iterations: 60,
            target_overflow: 0.08,
            anchor_base: 0.015,
            seed_anchor: 0.08,
            seed: 7,
        }
    }
}

/// A finished placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementResult {
    /// One position per movable object, inside the core.
    pub positions: Vec<(f64, f64)>,
    /// Unweighted HPWL of the result, µm.
    pub hpwl: f64,
    /// Lower/upper-bound iterations performed.
    pub iterations: usize,
    /// Final density overflow.
    pub overflow: f64,
    /// Wall-clock seconds spent in `place`.
    pub runtime: f64,
}

/// The global placer. See the crate docs for the algorithm outline.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    options: PlacerOptions,
}

impl GlobalPlacer {
    /// Creates a placer with the given options.
    pub fn new(options: PlacerOptions) -> Self {
        Self { options }
    }

    /// The active options.
    pub fn options(&self) -> &PlacerOptions {
        &self.options
    }

    /// Places the problem. Incremental mode engages automatically when the
    /// problem carries seed positions.
    pub fn place(&self, problem: &PlacementProblem) -> PlacementResult {
        let start = Instant::now();
        let m = problem.movable_count();
        if m == 0 {
            return PlacementResult {
                positions: Vec::new(),
                hpwl: 0.0,
                iterations: 0,
                overflow: 0.0,
                runtime: start.elapsed().as_secs_f64(),
            };
        }
        let opt = &self.options;
        let incremental = problem.seed_positions.is_some();
        let iters = if incremental {
            opt.incremental_iterations
        } else {
            opt.max_iterations
        };

        // Initial positions: seeds, or a random scatter in the core.
        let mut rng = StdRng::seed_from_u64(opt.seed);
        let core = problem.core;
        let mut pos: Vec<(f64, f64)> = match &problem.seed_positions {
            Some(seeds) => seeds.clone(),
            None => (0..m)
                .map(|_| {
                    (
                        core.llx + rng.random::<f64>() * core.width(),
                        core.lly + rng.random::<f64>() * core.height(),
                    )
                })
                .collect(),
        };
        self.clamp(problem, &mut pos);
        let seeds = problem.seed_positions.clone();
        let mut upper = spread(problem, &pos);
        let mut overflow = density_overflow(problem, &upper);
        let mut done = 0;

        let mut anchor_w: Vec<f64> = vec![0.0; m];
        for it in 0..iters {
            done = it + 1;
            // Anchor targets: spread positions (weight ramping up), blended
            // with the seed pull in incremental mode.
            let ramp = opt.anchor_base * (it as f64 + 1.0);
            for i in 0..m {
                let mut w_sum = ramp;
                let mut t = upper[i];
                if let Some(s) = &seeds {
                    let sw = opt.seed_anchor;
                    t = (
                        (t.0 * ramp + s[i].0 * sw) / (ramp + sw),
                        (t.1 * ramp + s[i].1 * sw) / (ramp + sw),
                    );
                    w_sum += sw;
                }
                anchor_w[i] = w_sum;
                upper[i] = t;
            }
            let tx: Vec<f64> = upper.iter().map(|p| p.0).collect();
            let ty: Vec<f64> = upper.iter().map(|p| p.1).collect();
            let x0: Vec<f64> = pos.iter().map(|p| p.0).collect();
            let y0: Vec<f64> = pos.iter().map(|p| p.1).collect();
            let sx = B2bSystem::build(
                problem,
                &pos,
                Axis::X,
                Some(Anchors {
                    target: &tx,
                    weight: &anchor_w,
                }),
            )
            .solve(&x0, opt.cg_iterations, 1e-6);
            let sy = B2bSystem::build(
                problem,
                &pos,
                Axis::Y,
                Some(Anchors {
                    target: &ty,
                    weight: &anchor_w,
                }),
            )
            .solve(&y0, opt.cg_iterations, 1e-6);
            for i in 0..m {
                pos[i] = (sx[i], sy[i]);
            }
            self.clamp(problem, &mut pos);
            upper = spread(problem, &pos);
            overflow = density_overflow(problem, &upper);
            if overflow <= opt.target_overflow {
                break;
            }
        }
        let hpwl = raw_hpwl(problem, &upper);
        PlacementResult {
            positions: upper,
            hpwl,
            iterations: done,
            overflow,
            runtime: start.elapsed().as_secs_f64(),
        }
    }

    fn clamp(&self, problem: &PlacementProblem, pos: &mut [(f64, f64)]) {
        for (i, p) in pos.iter_mut().enumerate() {
            let r = problem.region[i].unwrap_or(problem.core);
            *p = r.clamp(p.0, p.1);
            *p = problem.evict_from_blockages(p.0, p.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::floorplan::Floorplan;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::netlist::Netlist;

    fn flat(scale: f64, seed: u64) -> (Netlist, Floorplan) {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(scale)
            .seed(seed)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        (n, fp)
    }

    #[test]
    fn placement_beats_random_scatter() {
        let (n, fp) = flat(0.01, 1);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut rng = StdRng::seed_from_u64(99);
        let random: Vec<(f64, f64)> = (0..p.movable_count())
            .map(|_| {
                (
                    fp.core.llx + rng.random::<f64>() * fp.core.width(),
                    fp.core.lly + rng.random::<f64>() * fp.core.height(),
                )
            })
            .collect();
        let random_hpwl = raw_hpwl(&p, &random);
        let result = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        assert!(
            result.hpwl < random_hpwl * 0.8,
            "placed {} vs random {random_hpwl}",
            result.hpwl
        );
        for &(x, y) in &result.positions {
            assert!(fp.core.contains(x, y));
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let (n, fp) = flat(0.005, 2);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let a = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        let b = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn incremental_mode_is_faster_and_respects_seeds() {
        let (n, fp) = flat(0.01, 3);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let full = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        // Seed with the full result: incremental should converge quickly to
        // a similar-quality placement.
        let p2 = p.clone().with_seeds(full.positions.clone());
        let inc = GlobalPlacer::new(PlacerOptions::default()).place(&p2);
        assert!(inc.iterations <= PlacerOptions::default().incremental_iterations);
        assert!(
            inc.hpwl < full.hpwl * 1.25,
            "incremental {} vs full {}",
            inc.hpwl,
            full.hpwl
        );
    }

    #[test]
    fn overflow_is_controlled() {
        let (n, fp) = flat(0.01, 4);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let r = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        assert!(r.overflow < 0.4, "overflow {}", r.overflow);
    }

    #[test]
    fn region_constraint_is_honored() {
        let (n, fp) = flat(0.005, 5);
        let mut p = PlacementProblem::from_netlist(&n, &fp);
        let r = cp_netlist::floorplan::Rect::new(
            fp.core.llx,
            fp.core.lly,
            fp.core.width() / 4.0,
            fp.core.height() / 4.0,
        );
        for i in 0..10.min(p.movable_count()) {
            p.set_region(i, r);
        }
        let res = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        for i in 0..10.min(p.movable_count()) {
            let (x, y) = res.positions[i];
            assert!(r.contains(x, y), "cell {i} at ({x}, {y}) escaped region");
        }
    }

    #[test]
    fn empty_problem_is_ok() {
        let (n, fp) = flat(0.005, 6);
        let mut p = PlacementProblem::from_netlist(&n, &fp);
        p.movable.clear();
        p.region.clear();
        // Rebuild a consistent empty hypergraph.
        p.hypergraph = cp_graph::Hypergraph::new(p.fixed.len(), vec![]);
        p.net_weights.clear();
        let r = GlobalPlacer::new(PlacerOptions::default()).place(&p);
        assert_eq!(r.positions.len(), 0);
        assert_eq!(r.hpwl, 0.0);
    }
}
