//! Analytic global placement, legalization and clock tree synthesis — the
//! OpenROAD (RePlAce/TritonCTS) stand-in.
//!
//! The placer follows the SimPL/bound-to-bound recipe:
//!
//! 1. **Lower bound**: minimize quadratic wirelength under the
//!    bound-to-bound (B2B) net model, solved per axis with preconditioned
//!    conjugate gradients ([`solver`]).
//! 2. **Upper bound**: spread cells to meet density by recursive-bisection
//!    look-ahead legalization ([`spreading`]).
//! 3. Anchor pseudo-nets pull the next lower bound toward the spread
//!    positions; iterate until density overflow converges ([`global`]).
//!
//! Incremental (seeded) mode starts from given positions and anchors to
//! them with a reduced iteration budget — this is what makes the paper's
//! *seeded placement* (Algorithm 1 lines 15–25) fast. Region constraints
//! (Innovus mode, line 18) clamp chosen cells into rectangles each
//! iteration.
//!
//! [`legalize`] snaps standard cells to rows (Tetris), and [`cts`] builds a
//! recursive-bisection clock tree whose per-sink insertion delays feed STA.
//!
//! # Examples
//!
//! ```
//! use cp_netlist::generator::{DesignProfile, GeneratorConfig};
//! use cp_netlist::Floorplan;
//! use cp_place::{GlobalPlacer, PlacementProblem, PlacerOptions};
//!
//! let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
//!     .scale(0.01)
//!     .generate();
//! let fp = Floorplan::for_netlist(&netlist, 0.6, 1.0);
//! let problem = PlacementProblem::from_netlist(&netlist, &fp);
//! let result = GlobalPlacer::new(PlacerOptions::default())
//!     .place(&problem)
//!     .expect("well-formed problem places");
//! assert!(result.hpwl > 0.0);
//! assert_eq!(result.positions.len(), netlist.cell_count());
//! ```
//!
//! Every stage entry point returns `Result<_, PlaceError>`: degenerate
//! cores, malformed seeds and NaN coordinates surface as typed errors, and
//! a diverging global-placement loop reverts to its best snapshot when
//! [`PlacerOptions::revert_if_diverge`] is set (the default).

pub mod backend;
pub mod cts;
pub mod detailed;
pub mod error;
pub mod global;
pub mod hpwl;
pub mod kernels;
pub mod legalize;
pub mod problem;
pub mod soa;
pub mod solver;
pub mod spreading;
pub mod svg;

pub use crate::backend::{B2bBackend, EDensityBackend, PlacerBackend, PlacerBackendKind};
pub use crate::cts::{synthesize_clock_tree, ClockTree, CtsOptions};
pub use crate::detailed::{refine, DetailedOptions};
pub use crate::error::{BestSnapshot, PlaceError};
pub use crate::global::{GlobalPlacer, PlacementResult, PlacerOptions};
pub use crate::legalize::legalize;
pub use crate::problem::{Object, PlacementProblem};
pub use crate::soa::{PlacementSoa, VertexCoords};
pub use crate::solver::{CgOptions, CgStats, IcPreconditioner};
pub use crate::svg::placement_svg;
