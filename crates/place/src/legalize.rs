//! Row legalization (Tetris / greedy displacement).
//!
//! Snaps single-row-height objects onto rows and sites, left-to-right, each
//! cell taking the row/site minimizing displacement from its global
//! position. Multi-row objects (cluster macros) are left untouched.

use crate::error::PlaceError;
use crate::problem::PlacementProblem;
use cp_netlist::floorplan::Floorplan;

/// Legalizes `positions` in place; returns total displacement in µm.
///
/// Cells taller than one row (macros) keep their global position. If a row
/// runs out of space the next-best row is tried; cells that fit nowhere
/// (pathological overfill) keep their global position.
///
/// # Errors
///
/// - [`PlaceError::InvalidInput`] when `positions` doesn't cover the
///   problem's movables, or the floorplan has no rows for them.
/// - [`PlaceError::NonFinite`] when a position carries NaN/Inf.
pub fn legalize(
    problem: &PlacementProblem,
    floorplan: &Floorplan,
    positions: &mut [(f64, f64)],
) -> Result<f64, PlaceError> {
    let _span = cp_trace::span_with(
        "place.legalize",
        &[(
            "movables",
            cp_trace::ArgValue::U(problem.movable_count() as u64),
        )],
    );
    if positions.len() < problem.movable_count() {
        return Err(PlaceError::InvalidInput {
            reason: format!(
                "{} positions for {} movables",
                positions.len(),
                problem.movable_count()
            ),
        });
    }
    if positions
        .iter()
        .any(|p| !(p.0.is_finite() && p.1.is_finite()))
    {
        return Err(PlaceError::NonFinite { stage: "legalize" });
    }
    let rows = floorplan.row_count();
    if rows == 0 {
        if problem.movable_count() == 0 {
            return Ok(0.0);
        }
        return Err(PlaceError::InvalidInput {
            reason: "floorplan has no rows to legalize onto".to_string(),
        });
    }
    let core = floorplan.core;
    let site = floorplan.site_width;
    // Free x-segments per row (the row span minus blockage overlaps).
    let segments: Vec<Vec<(f64, f64)>> = (0..rows)
        .map(|r| {
            let y0 = floorplan.row_y(r);
            let y1 = y0 + floorplan.row_height;
            let mut segs = vec![(core.llx, core.urx)];
            for b in &floorplan.blockages {
                if b.ury <= y0 + 1e-9 || b.lly >= y1 - 1e-9 {
                    continue;
                }
                let mut next = Vec::with_capacity(segs.len() + 1);
                for (s0, s1) in segs {
                    if b.urx <= s0 || b.llx >= s1 {
                        next.push((s0, s1));
                        continue;
                    }
                    if b.llx > s0 {
                        next.push((s0, b.llx));
                    }
                    if b.urx < s1 {
                        next.push((b.urx, s1));
                    }
                }
                segs = next;
            }
            segs
        })
        .collect();
    // Per-row fill cursor, in µm from the core's left edge.
    let mut cursor = vec![core.llx; rows];
    // Order by x then y for the classic Tetris sweep.
    let mut order: Vec<usize> = (0..problem.movable_count()).collect();
    order.sort_by(|&a, &b| {
        positions[a]
            .0
            .total_cmp(&positions[b].0)
            .then(positions[a].1.total_cmp(&positions[b].1))
    });
    let mut total_disp = 0.0;
    for i in order {
        let obj = problem.movable[i];
        if obj.height > floorplan.row_height * 1.5 {
            continue; // macro: not row-legalized
        }
        let (gx, gy) = positions[i];
        // Classic Tetris: the cell lands at each candidate row's cursor,
        // skipping blocked spans (left-packed, so capacity alone
        // guarantees legality); pick the row minimizing displacement.
        let mut best: Option<(f64, usize, f64)> = None; // (cost, row, x)
        for r in 0..rows {
            // First free, site-aligned x at or past the cursor that fits.
            let mut placed = None;
            for &(s0, s1) in &segments[r] {
                let raw = cursor[r].max(s0);
                let x = core.llx + ((raw - core.llx) / site - 1e-9).ceil() * site;
                let x = x.max(s0);
                if x + obj.width <= s1 + 1e-9 {
                    placed = Some(x);
                    break;
                }
            }
            let Some(x) = placed else { continue };
            let y = floorplan.row_y(r);
            let cost = (x - gx).abs() + (y - gy).abs();
            if best.is_none_or(|(c, _, _)| cost < c) {
                best = Some((cost, r, x));
            }
        }
        if let Some((cost, r, x)) = best {
            positions[i] = (x, floorplan.row_y(r));
            cursor[r] = x + obj.width;
            total_disp += cost;
        }
    }
    Ok(total_disp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{GlobalPlacer, PlacerOptions};
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn legalized_cells_sit_on_rows_without_overlap() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(8)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        let disp = legalize(&p, &fp, &mut r.positions).expect("legalization succeeds");
        assert!(disp > 0.0);
        // On-row check.
        for (i, &(x, y)) in r.positions.iter().enumerate() {
            let row_offset = (y - fp.core.lly) / fp.row_height;
            assert!(
                (row_offset - row_offset.round()).abs() < 1e-6,
                "cell {i} off-row at y={y}"
            );
            assert!(x >= fp.core.llx - 1e-9);
            assert!(x + p.movable[i].width <= fp.core.urx + 1e-6);
        }
        // No overlap within each row.
        let mut by_row: std::collections::HashMap<i64, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for (i, &(x, y)) in r.positions.iter().enumerate() {
            by_row
                .entry((y * 1000.0) as i64)
                .or_default()
                .push((x, x + p.movable[i].width));
        }
        for (_, mut spans) in by_row {
            spans.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for w in spans.windows(2) {
                assert!(
                    w[0].1 <= w[1].0 + 1e-6,
                    "overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn displacement_is_modest() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(9)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.5, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        let disp = legalize(&p, &fp, &mut r.positions).expect("legalization succeeds");
        let per_cell = disp / p.movable_count() as f64;
        // Average displacement under a handful of row heights.
        assert!(per_cell < 8.0 * fp.row_height, "per-cell disp {per_cell}");
    }

    #[test]
    fn nan_positions_are_rejected() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(9)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.5, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut pos = vec![(0.0, 0.0); p.movable_count()];
        pos[0].0 = f64::NAN;
        assert!(matches!(
            legalize(&p, &fp, &mut pos),
            Err(crate::error::PlaceError::NonFinite { .. })
        ));
        let mut short = vec![(0.0, 0.0); 1];
        assert!(matches!(
            legalize(&p, &fp, &mut short),
            Err(crate::error::PlaceError::InvalidInput { .. })
        ));
    }
}

#[cfg(test)]
mod blockage_tests {
    use super::*;
    use crate::global::{GlobalPlacer, PlacerOptions};
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn legalized_cells_avoid_blockages() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(10)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0).with_macro_blockages(2, 0.25);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        legalize(&p, &fp, &mut r.positions).expect("legalization succeeds");
        let mut legalized = 0;
        for (i, &(x, y)) in r.positions.iter().enumerate() {
            let off = (y - fp.core.lly) / fp.row_height;
            if (off - off.round()).abs() > 1e-6 {
                continue; // macro-height object (none expected here)
            }
            legalized += 1;
            let (x0, x1) = (x, x + p.movable[i].width);
            let (y0, y1) = (y, y + fp.row_height);
            for b in &fp.blockages {
                let ow = (x1.min(b.urx) - x0.max(b.llx)).max(0.0);
                let oh = (y1.min(b.ury) - y0.max(b.lly)).max(0.0);
                assert!(
                    ow * oh < 1e-9,
                    "cell {i} at ({x}, {y}) overlaps blockage {b:?}"
                );
            }
        }
        assert_eq!(legalized, p.movable_count());
    }
}
