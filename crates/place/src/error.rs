//! Typed errors for the placement stages.

use cp_resilience::Interrupt;
use std::fmt;

/// The best finite iterate available when a run was interrupted, so
/// callers can keep partial progress instead of discarding the work.
#[derive(Debug, Clone, PartialEq)]
pub struct BestSnapshot {
    /// One position per movable object, inside the core.
    pub positions: Vec<(f64, f64)>,
    /// Unweighted HPWL of the snapshot, µm.
    pub hpwl: f64,
}

/// Why a placement stage could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// The core region is unusable (non-finite or non-positive dims).
    DegenerateCore {
        /// Core width, µm.
        width: f64,
        /// Core height, µm.
        height: f64,
    },
    /// An input or intermediate value carried a NaN or infinity.
    NonFinite {
        /// Stage that observed the value ("seed positions", "legalize", …).
        stage: &'static str,
    },
    /// Input shapes or contents don't form a valid problem.
    InvalidInput {
        /// What was wrong.
        reason: String,
    },
    /// The solver diverged and revert-on-divergence was disabled.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Best finite HPWL observed before the blow-up, µm.
        best_hpwl: f64,
    },
    /// The run's [`cp_resilience::RunControl`] interrupted the outer loop
    /// (cancellation, deadline, or memory budget).
    Interrupted {
        /// What interrupted the run and where.
        interrupt: Interrupt,
        /// Outer iterations completed before the interruption.
        iteration: usize,
        /// Best finite iterate seen so far, if any — attached so partial
        /// progress survives the interruption.
        best: Option<BestSnapshot>,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegenerateCore { width, height } => {
                write!(f, "degenerate core region ({width} x {height} um)")
            }
            Self::NonFinite { stage } => {
                write!(f, "non-finite coordinate reached the {stage} stage")
            }
            Self::InvalidInput { reason } => write!(f, "invalid placement input: {reason}"),
            Self::Diverged {
                iteration,
                best_hpwl,
            } => write!(
                f,
                "placement diverged at iteration {iteration} \
                 (best HPWL before blow-up: {best_hpwl:.1} um); \
                 enable revert_if_diverge to recover the best snapshot"
            ),
            Self::Interrupted {
                interrupt,
                iteration,
                best,
            } => write!(
                f,
                "placement interrupted after {iteration} iteration(s): {interrupt}{}",
                match best {
                    Some(b) => format!(" (best snapshot HPWL {:.1} um attached)", b.hpwl),
                    None => String::new(),
                }
            ),
        }
    }
}

impl std::error::Error for PlaceError {}
