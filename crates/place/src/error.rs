//! Typed errors for the placement stages.

use std::fmt;

/// Why a placement stage could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// The core region is unusable (non-finite or non-positive dims).
    DegenerateCore {
        /// Core width, µm.
        width: f64,
        /// Core height, µm.
        height: f64,
    },
    /// An input or intermediate value carried a NaN or infinity.
    NonFinite {
        /// Stage that observed the value ("seed positions", "legalize", …).
        stage: &'static str,
    },
    /// Input shapes or contents don't form a valid problem.
    InvalidInput {
        /// What was wrong.
        reason: String,
    },
    /// The solver diverged and revert-on-divergence was disabled.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Best finite HPWL observed before the blow-up, µm.
        best_hpwl: f64,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegenerateCore { width, height } => {
                write!(f, "degenerate core region ({width} x {height} um)")
            }
            Self::NonFinite { stage } => {
                write!(f, "non-finite coordinate reached the {stage} stage")
            }
            Self::InvalidInput { reason } => write!(f, "invalid placement input: {reason}"),
            Self::Diverged {
                iteration,
                best_hpwl,
            } => write!(
                f,
                "placement diverged at iteration {iteration} \
                 (best HPWL before blow-up: {best_hpwl:.1} um); \
                 enable revert_if_diverge to recover the best snapshot"
            ),
        }
    }
}

impl std::error::Error for PlaceError {}
