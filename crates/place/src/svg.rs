//! SVG rendering of placements — the quickest way to *see* a result.
//!
//! Renders the die, core, blockages and cells; cells may be colored by an
//! arbitrary grouping (e.g. the cluster assignment, which makes the
//! seeded-placement structure visible at a glance).

use crate::problem::PlacementProblem;
use cp_netlist::floorplan::Floorplan;
use std::fmt::Write as _;

/// Categorical fill palette (cycled by group id).
const PALETTE: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

fn rect(out: &mut String, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
    let _ = write!(
        out,
        "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\""
    );
    if let Some(s) = stroke {
        let _ = write!(out, " stroke=\"{s}\"");
    }
    let _ = writeln!(out, "/>");
}

/// Renders a placement as an SVG document.
///
/// `groups`, when given, colors each movable by `groups[i] % palette`;
/// otherwise all cells share one color. The viewport is scaled so the die's
/// longer side maps to 800 px.
pub fn placement_svg(
    problem: &PlacementProblem,
    floorplan: &Floorplan,
    positions: &[(f64, f64)],
    groups: Option<&[u32]>,
) -> String {
    let die = floorplan.die;
    let scale = 800.0 / die.width().max(die.height());
    let (w, h) = (die.width() * scale, die.height() * scale);
    // SVG y grows downward; flip.
    let fx = |x: f64| (x - die.llx) * scale;
    let fy = |y: f64| h - (y - die.lly) * scale;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {w:.1} {h:.1}\">"
    );
    rect(&mut out, 0.0, 0.0, w, h, "#ffffff", Some("#222222"));
    let core = floorplan.core;
    rect(
        &mut out,
        fx(core.llx),
        fy(core.ury),
        core.width() * scale,
        core.height() * scale,
        "#f5f5f5",
        Some("#888888"),
    );
    for b in &floorplan.blockages {
        rect(
            &mut out,
            fx(b.llx),
            fy(b.ury),
            b.width() * scale,
            b.height() * scale,
            "#cccccc",
            Some("#555555"),
        );
    }
    for (i, &(x, y)) in positions.iter().enumerate() {
        let obj = problem.movable[i];
        let color = match groups {
            Some(g) => PALETTE[g[i] as usize % PALETTE.len()],
            None => PALETTE[0],
        };
        rect(
            &mut out,
            fx(x),
            fy(y + obj.height),
            (obj.width * scale).max(0.5),
            (obj.height * scale).max(0.5),
            color,
            None,
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{GlobalPlacer, PlacerOptions};
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn svg_contains_every_cell() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(71)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let r = GlobalPlacer::new(PlacerOptions::default())
            .place(&p)
            .expect("placement succeeds");
        let svg = placement_svg(&p, &fp, &r.positions, None);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // die + core + one rect per cell
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 2 + p.movable_count());
    }

    #[test]
    fn groups_color_cells_differently() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(71)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let pos = vec![fp.core.center(); p.movable_count()];
        let groups: Vec<u32> = (0..p.movable_count() as u32).collect();
        let svg = placement_svg(&p, &fp, &pos, Some(&groups));
        // At least two palette colors appear.
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn blockages_are_drawn() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(72)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0).with_macro_blockages(2, 0.2);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let pos = vec![fp.core.center(); p.movable_count()];
        let svg = placement_svg(&p, &fp, &pos, None);
        assert_eq!(svg.matches("#cccccc").count(), 2);
    }
}
