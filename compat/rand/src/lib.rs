//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `RngExt::{random,
//! random_bool, random_range}` and `seq::SliceRandom::shuffle`.
//!
//! The container this repository builds in has no crates-io access, so the
//! workspace patches `rand` to this implementation (`[patch.crates-io]` in
//! the root manifest). The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed, statistically solid for placement scatter,
//! coarsening visit orders and GNN init.

use std::ops::{Range, RangeInclusive};

/// Minimal RNG core: a 64-bit output step.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw bits.
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform integer/float can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_range_impls!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::random_from(rng) * (hi - lo)
    }
}

/// The convenience sampling surface (`rand`'s `Rng`/`RngExt`).
pub trait RngExt: RngCore {
    /// A uniform sample of `T` over its natural domain.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — the standard small-state
    /// generator; plays the role of `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`).

    use super::{RngCore, SampleRange};

    /// In-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
            let v = rng.random_range(2..=4u32);
            assert!((2..=4).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
