//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, range/tuple/vec strategies, `prop_map` /
//! `prop_flat_map`, `ProptestConfig::with_cases` and the `prop_assert*`
//! macros.
//!
//! The container this repository builds in has no crates-io access, so the
//! workspace patches `proptest` to this implementation. Inputs are drawn
//! from a deterministic xoshiro-style generator — every run replays the
//! same cases. Shrinking is not implemented: a failing case panics with
//! the ordinary assert message.

use std::ops::{Range, RangeInclusive};

/// The deterministic source strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        self.next_u64() % bound
    }
}

/// A value generator. The stand-in keeps proptest's combinator names but
/// generates eagerly with no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// Draws a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// A vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }
}

pub mod prop {
    //! The `prop::` path proptest users spell out.
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that replays `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Per-test deterministic stream, decorrelated by name length
            // and first byte (good enough to avoid identical streams).
            let name = stringify!($name);
            let seed = name
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            let mut rng = $crate::TestRng::seed_from_u64(seed);
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths_follow_size(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0..n as u32, 1..5).prop_map(move |v| (n, v))
        })) {
            prop_assert!(v.iter().all(|&e| (e as usize) < n));
        }
    }
}
