//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The container this repository builds in has no crates-io access, so the
//! workspace patches `criterion` to this implementation. It runs each
//! benchmark body `sample_size` times and reports min/mean wall-clock per
//! iteration — enough to keep `cargo bench` (and `cargo test --benches`)
//! compiling and producing comparable numbers, without criterion's
//! statistical machinery.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut bencher);
        let (min, mean) = bencher.summary();
        println!(
            "bench {}/{}: min {:.3} ms, mean {:.3} ms ({} samples)",
            self.name,
            name.into(),
            min * 1e3,
            mean * 1e3,
            self.samples,
        );
    }

    /// Ends the group (provided for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the body.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<f64>,
}

impl Bencher {
    /// Runs `f` once per sample, recording wall-clock seconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed.push(start.elapsed().as_secs_f64());
        }
    }

    fn summary(&self) -> (f64, f64) {
        if self.elapsed.is_empty() {
            return (0.0, 0.0);
        }
        let min = self.elapsed.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = self.elapsed.iter().sum::<f64>() / self.elapsed.len() as f64;
        (min, mean)
    }
}

/// Re-export point so `use std::hint::black_box` and criterion-style
/// `criterion::black_box` both work.
pub use std::hint::black_box;

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn ungrouped_bench_function_works() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
